#include "util/json.hpp"

#include <cstdio>
#include <exception>
#include <utility>

namespace lsiq::util::json {

void append_string(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char escaped[8];
          std::snprintf(escaped, sizeof escaped, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += escaped;
        } else {
          out += c;  // UTF-8 payload bytes pass through untouched
        }
    }
  }
  out += '"';
}

std::string format_double(double value) {
  char text[64];
  std::snprintf(text, sizeof text, "%.17g", value);
  return text;
}

bool parse_flat_object(const std::string& line,
                       std::map<std::string, Value>* out) {
  std::size_t i = 0;
  const auto skip_space = [&] {
    while (i < line.size() &&
           (line[i] == ' ' || line[i] == '\t' || line[i] == '\r')) {
      ++i;
    }
  };
  const auto parse_string = [&](std::string* text) -> bool {
    if (i >= line.size() || line[i] != '"') return false;
    ++i;
    text->clear();
    while (i < line.size() && line[i] != '"') {
      char c = line[i++];
      if (c != '\\') {
        *text += c;
        continue;
      }
      if (i >= line.size()) return false;
      const char escape = line[i++];
      switch (escape) {
        case '"': *text += '"'; break;
        case '\\': *text += '\\'; break;
        case '/': *text += '/'; break;
        case 'n': *text += '\n'; break;
        case 'r': *text += '\r'; break;
        case 't': *text += '\t'; break;
        case 'b': *text += '\b'; break;
        case 'f': *text += '\f'; break;
        case 'u': {
          if (i + 4 > line.size()) return false;
          unsigned value = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = line[i++];
            value <<= 4;
            if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') value |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') value |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          if (value > 0xff) return false;  // the writer only escapes bytes
          *text += static_cast<char>(value);
          break;
        }
        default: return false;
      }
    }
    if (i >= line.size()) return false;
    ++i;  // closing quote
    return true;
  };

  skip_space();
  if (i >= line.size() || line[i] != '{') return false;
  ++i;
  skip_space();
  if (i < line.size() && line[i] == '}') return true;
  while (true) {
    skip_space();
    std::string key;
    if (!parse_string(&key)) return false;
    skip_space();
    if (i >= line.size() || line[i] != ':') return false;
    ++i;
    skip_space();
    Value value;
    if (i < line.size() && line[i] == '"') {
      value.kind = Value::Kind::kString;
      if (!parse_string(&value.text)) return false;
    } else if (line.compare(i, 4, "true") == 0) {
      value.kind = Value::Kind::kBool;
      value.boolean = true;
      i += 4;
    } else if (line.compare(i, 5, "false") == 0) {
      value.kind = Value::Kind::kBool;
      value.boolean = false;
      i += 5;
    } else {
      const std::size_t start = i;
      while (i < line.size() && line[i] != ',' && line[i] != '}' &&
             line[i] != ' ') {
        ++i;
      }
      value.kind = Value::Kind::kNumber;
      value.text = line.substr(start, i - start);
      try {
        std::size_t consumed = 0;
        value.number = std::stod(value.text, &consumed);
        if (consumed != value.text.size()) return false;
      } catch (const std::exception&) {
        return false;
      }
    }
    (*out)[key] = std::move(value);
    skip_space();
    if (i >= line.size()) return false;
    if (line[i] == ',') {
      ++i;
      continue;
    }
    if (line[i] == '}') return true;
    return false;
  }
}

const Value* find(const std::map<std::string, Value>& values,
                  const std::string& key, Value::Kind kind) {
  const auto it = values.find(key);
  if (it == values.end() || it->second.kind != kind) return nullptr;
  return &it->second;
}

}  // namespace lsiq::util::json
