#include "util/brent.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace lsiq::util {

RootResult find_root_brent(const std::function<double(double)>& f, double lo,
                           double hi, double x_tol, int max_iterations) {
  LSIQ_EXPECT(lo < hi, "find_root_brent requires lo < hi");
  LSIQ_EXPECT(x_tol > 0.0, "find_root_brent requires x_tol > 0");

  double a = lo;
  double b = hi;
  double fa = f(a);
  double fb = f(b);

  RootResult result;
  if (fa == 0.0) {
    result = {a, 0.0, 0, true};
    return result;
  }
  if (fb == 0.0) {
    result = {b, 0.0, 0, true};
    return result;
  }
  if ((fa > 0.0) == (fb > 0.0)) {
    throw NumericError("find_root_brent: f(lo) and f(hi) have the same sign");
  }

  double c = a;
  double fc = fa;
  double d = b - a;
  double e = d;

  for (int iter = 1; iter <= max_iterations; ++iter) {
    if ((fb > 0.0) == (fc > 0.0)) {
      c = a;
      fc = fa;
      d = b - a;
      e = d;
    }
    if (std::abs(fc) < std::abs(fb)) {
      a = b;
      b = c;
      c = a;
      fa = fb;
      fb = fc;
      fc = fa;
    }

    const double tol =
        2.0 * std::numeric_limits<double>::epsilon() * std::abs(b) +
        0.5 * x_tol;
    const double m = 0.5 * (c - b);
    if (std::abs(m) <= tol || fb == 0.0) {
      result = {b, fb, iter, true};
      return result;
    }

    if (std::abs(e) >= tol && std::abs(fa) > std::abs(fb)) {
      // Attempt inverse quadratic interpolation (secant when only two
      // distinct points are available).
      const double s = fb / fa;
      double p;
      double q;
      if (a == c) {
        p = 2.0 * m * s;
        q = 1.0 - s;
      } else {
        const double qq = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * m * qq * (qq - r) - (b - a) * (r - 1.0));
        q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) {
        q = -q;
      } else {
        p = -p;
      }
      if (2.0 * p < std::min(3.0 * m * q - std::abs(tol * q),
                             std::abs(e * q))) {
        e = d;
        d = p / q;
      } else {
        d = m;  // interpolation rejected: bisect
        e = m;
      }
    } else {
      d = m;
      e = m;
    }

    a = b;
    fa = fb;
    if (std::abs(d) > tol) {
      b += d;
    } else {
      b += (m > 0.0 ? tol : -tol);
    }
    fb = f(b);
    result.iterations = iter;
  }

  result.x = b;
  result.fx = fb;
  result.converged = false;
  return result;
}

MinimizeResult minimize_brent(const std::function<double(double)>& f,
                              double lo, double hi, double x_tol,
                              int max_iterations) {
  LSIQ_EXPECT(lo < hi, "minimize_brent requires lo < hi");
  LSIQ_EXPECT(x_tol > 0.0, "minimize_brent requires x_tol > 0");

  constexpr double kGolden = 0.3819660112501051;  // (3 - sqrt(5)) / 2

  double a = lo;
  double b = hi;
  double x = a + kGolden * (b - a);
  double w = x;
  double v = x;
  double fx = f(x);
  double fw = fx;
  double fv = fx;
  double d = 0.0;
  double e = 0.0;

  MinimizeResult result;
  for (int iter = 1; iter <= max_iterations; ++iter) {
    const double xm = 0.5 * (a + b);
    const double tol1 =
        x_tol * std::abs(x) + std::numeric_limits<double>::epsilon();
    const double tol2 = 2.0 * tol1;
    if (std::abs(x - xm) <= tol2 - 0.5 * (b - a)) {
      result = {x, fx, iter, true};
      return result;
    }

    bool use_golden = true;
    if (std::abs(e) > tol1) {
      // Fit a parabola through (v, fv), (w, fw), (x, fx).
      const double r = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) p = -p;
      q = std::abs(q);
      const double e_prev = e;
      e = d;
      if (std::abs(p) < std::abs(0.5 * q * e_prev) && p > q * (a - x) &&
          p < q * (b - x)) {
        d = p / q;
        const double u = x + d;
        if (u - a < tol2 || b - u < tol2) {
          d = (xm > x ? tol1 : -tol1);
        }
        use_golden = false;
      }
    }
    if (use_golden) {
      e = (x >= xm ? a - x : b - x);
      d = kGolden * e;
    }

    const double u =
        (std::abs(d) >= tol1 ? x + d : x + (d > 0.0 ? tol1 : -tol1));
    const double fu = f(u);

    if (fu <= fx) {
      if (u >= x) {
        a = x;
      } else {
        b = x;
      }
      v = w;
      fv = fw;
      w = x;
      fw = fx;
      x = u;
      fx = fu;
    } else {
      if (u < x) {
        a = u;
      } else {
        b = u;
      }
      if (fu <= fw || w == x) {
        v = w;
        fv = fw;
        w = u;
        fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u;
        fv = fu;
      }
    }
    result.iterations = iter;
  }

  result.x = x;
  result.fx = fx;
  result.converged = false;
  return result;
}

}  // namespace lsiq::util
