// A persistent worker pool for data-parallel simulation loops.
//
// The multi-threaded fault simulator dispatches one job per block of
// patterns; spawning threads per block would dominate the work at small
// block counts, so the pool keeps its workers alive across jobs and wakes
// them with a generation counter. Jobs are "lane" shaped: run(fn) executes
// fn(lane) once per worker, and the caller blocks until every lane has
// finished. Partitioning work across lanes is the caller's business — the
// fault simulator gives each lane a strided slice of the live-fault list
// (and its own propagator, so lanes never share mutable state).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lsiq::util {

/// The one place the shared worker-count convention is resolved:
/// 0 = one worker per hardware thread (at least 1), n = exactly n workers.
/// Every knob that documents that convention (ThreadPool's constructor,
/// fault::simulate_ppsfp_mt, bist::BistConfig::num_threads,
/// flow::EngineSpec::num_threads)
/// resolves through this function, so "0 means all cores" cannot drift
/// between subsystems.
[[nodiscard]] std::size_t resolve_worker_count(std::size_t requested) noexcept;

class ThreadPool {
 public:
  /// Start `thread_count` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(std::size_t thread_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker lanes.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Execute fn(lane) on every worker, lane in [0, size()), and wait for all
  /// of them. The first exception a lane throws is rethrown here after the
  /// job completes.
  void run(const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop(std::size_t lane);

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable job_done_;
  std::vector<std::thread> workers_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t remaining_ = 0;
  std::exception_ptr first_error_;
  bool stopping_ = false;
};

}  // namespace lsiq::util
