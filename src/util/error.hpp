// Error handling primitives shared by all lsiq libraries.
//
// The library reports precondition violations and domain errors by throwing;
// callers that feed it untrusted input (file parsers, CLI tools) catch
// lsiq::Error at the boundary.
//
// Every lsiq::Error carries a stable ErrorCode so machine consumers — the
// batch runner's JSON-lines result store, retry policies, CI triage — can
// classify failures without parsing what() strings. Codes split into
// TRANSIENT (worth an automatic bounded retry: the failure is tied to the
// moment, not the input — I/O hiccups, resource exhaustion) and PERMANENT
// (retrying the same input reproduces the failure — parse errors, invalid
// specs, contract violations, deadline overruns). is_transient() is the one
// place that classification lives.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace lsiq {

/// Stable failure classification. Values are part of the JSONL result-store
/// format (serialized by name via error_code_name); never renumber or rename
/// existing entries, only append.
enum class ErrorCode : int {
  kOk = 0,           ///< no error (the code of a successful record)
  kUnknown = 1,      ///< unclassified failure (foreign std::exception)
  kContract = 2,     ///< ContractViolation: a precondition was violated
  kParse = 3,        ///< ParseError: malformed input text
  kNumeric = 4,      ///< NumericError: a numeric routine left its domain
  kInvalidSpec = 5,  ///< flow spec failed validation / unknown selector
  kIo = 6,           ///< IoError: file open/read/write failed
  kTransient = 7,    ///< TransientError: momentary resource failure
  kDeadline = 8,     ///< DeadlineExceeded: a watchdog deadline fired
  kCancelled = 9,    ///< CancelledError: work was cancelled externally
  kLint = 10,        ///< analyze::LintError: the pre-run static-analysis
                     ///< gate found error-severity diagnostics
  kQueueFull = 11,   ///< flow service admission refused: queue at capacity
  kShutdown = 12,    ///< flow service is draining / shut down; no admission
  kNotFound = 13,    ///< flow service: no job with the requested id
};

/// Stable lower_snake name of a code (the JSONL wire form).
[[nodiscard]] constexpr const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kUnknown: return "unknown";
    case ErrorCode::kContract: return "contract";
    case ErrorCode::kParse: return "parse";
    case ErrorCode::kNumeric: return "numeric";
    case ErrorCode::kInvalidSpec: return "invalid_spec";
    case ErrorCode::kIo: return "io";
    case ErrorCode::kTransient: return "transient";
    case ErrorCode::kDeadline: return "deadline";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kLint: return "lint";
    case ErrorCode::kQueueFull: return "queue_full";
    case ErrorCode::kShutdown: return "shutdown";
    case ErrorCode::kNotFound: return "not_found";
  }
  return "unknown";
}

/// Inverse of error_code_name; nullopt for an unrecognized name.
[[nodiscard]] inline std::optional<ErrorCode> error_code_from_name(
    std::string_view name) noexcept {
  for (const ErrorCode code :
       {ErrorCode::kOk, ErrorCode::kUnknown, ErrorCode::kContract,
        ErrorCode::kParse, ErrorCode::kNumeric, ErrorCode::kInvalidSpec,
        ErrorCode::kIo, ErrorCode::kTransient, ErrorCode::kDeadline,
        ErrorCode::kCancelled, ErrorCode::kLint, ErrorCode::kQueueFull,
        ErrorCode::kShutdown, ErrorCode::kNotFound}) {
    if (name == error_code_name(code)) return code;
  }
  return std::nullopt;
}

/// The retry split: transient failures are tied to the moment they happened
/// (I/O hiccup, resource exhaustion, a momentarily full admission queue)
/// and are worth a bounded, backed-off retry; everything else reproduces on
/// the same input. Deadline overruns are deliberately PERMANENT — a spec
/// that blew its budget once will blow it again, and retrying a wedged run
/// multiplies the damage. A kShutdown refusal is permanent too: a draining
/// service never re-opens admission.
[[nodiscard]] constexpr bool is_transient(ErrorCode code) noexcept {
  return code == ErrorCode::kIo || code == ErrorCode::kTransient ||
         code == ErrorCode::kQueueFull;
}

/// Base class of all exceptions thrown by lsiq libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what)
      : std::runtime_error(what), code_(ErrorCode::kUnknown) {}
  Error(const std::string& what, ErrorCode code)
      : std::runtime_error(what), code_(code) {}

  /// The stable classification of this failure.
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }

  /// is_transient(code()) — sugar for retry loops.
  [[nodiscard]] bool transient() const noexcept {
    return is_transient(code_);
  }

 private:
  ErrorCode code_;
};

/// A function argument violated a documented precondition.
class ContractViolation : public Error {
 public:
  explicit ContractViolation(const std::string& what)
      : Error(what, ErrorCode::kContract) {}
};

/// Malformed input data (netlist file, pattern file, spec file, ...).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what)
      : Error(what, ErrorCode::kParse) {}
};

/// A numeric routine failed to converge or left its valid domain.
class NumericError : public Error {
 public:
  explicit NumericError(const std::string& what)
      : Error(what, ErrorCode::kNumeric) {}
};

/// A file could not be opened, read, or written. Classified transient:
/// in batch context I/O failures (full disk, network blips, racing
/// writers) are the canonical retry-worthy class, and a genuinely missing
/// file fails each bounded retry identically and cheaply.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what)
      : Error(what, ErrorCode::kIo) {}
};

/// A momentary resource failure (thread spawn, allocation burst, an armed
/// transient failpoint). The retry policy's home class.
class TransientError : public Error {
 public:
  explicit TransientError(const std::string& what)
      : Error(what, ErrorCode::kTransient) {}
};

/// A watchdog deadline fired (util/deadline.hpp). Permanent by
/// classification — see is_transient().
class DeadlineExceeded : public Error {
 public:
  explicit DeadlineExceeded(const std::string& what)
      : Error(what, ErrorCode::kDeadline) {}
};

/// Work was cancelled from outside (batch shutdown, user interrupt).
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what)
      : Error(what, ErrorCode::kCancelled) {}
};

/// Classification of an arbitrary in-flight exception: an lsiq::Error's
/// own code, kUnknown for any foreign exception type.
[[nodiscard]] inline ErrorCode classify(const std::exception& e) noexcept {
  const auto* error = dynamic_cast<const Error*>(&e);
  return error != nullptr ? error->code() : ErrorCode::kUnknown;
}

namespace detail {
[[noreturn]] inline void contract_failure(const char* cond, const char* file,
                                          int line, const std::string& msg) {
  throw ContractViolation(std::string(file) + ":" + std::to_string(line) +
                          ": contract `" + cond + "` violated: " + msg);
}
}  // namespace detail

}  // namespace lsiq

/// Precondition check. Always on: the model code is not hot enough for the
/// branch to matter, and silent domain errors in probability code are far
/// more expensive than the check.
#define LSIQ_EXPECT(cond, msg)                                           \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::lsiq::detail::contract_failure(#cond, __FILE__, __LINE__, msg);  \
    }                                                                    \
  } while (false)
