// Error handling primitives shared by all lsiq libraries.
//
// The library reports precondition violations and domain errors by throwing;
// callers that feed it untrusted input (file parsers, CLI tools) catch
// lsiq::Error at the boundary.
#pragma once

#include <stdexcept>
#include <string>

namespace lsiq {

/// Base class of all exceptions thrown by lsiq libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A function argument violated a documented precondition.
class ContractViolation : public Error {
 public:
  explicit ContractViolation(const std::string& what) : Error(what) {}
};

/// Malformed input data (netlist file, pattern file, ...).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// A numeric routine failed to converge or left its valid domain.
class NumericError : public Error {
 public:
  explicit NumericError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_failure(const char* cond, const char* file,
                                          int line, const std::string& msg) {
  throw ContractViolation(std::string(file) + ":" + std::to_string(line) +
                          ": contract `" + cond + "` violated: " + msg);
}
}  // namespace detail

}  // namespace lsiq

/// Precondition check. Always on: the model code is not hot enough for the
/// branch to matter, and silent domain errors in probability code are far
/// more expensive than the check.
#define LSIQ_EXPECT(cond, msg)                                           \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::lsiq::detail::contract_failure(#cond, __FILE__, __LINE__, msg);  \
    }                                                                    \
  } while (false)
