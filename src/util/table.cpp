#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace lsiq::util {

TextTable::TextTable(std::vector<std::string> headers, Align alignment)
    : headers_(std::move(headers)), alignment_(alignment) {
  LSIQ_EXPECT(!headers_.empty(), "TextTable requires at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  LSIQ_EXPECT(cells.size() == headers_.size(),
              "TextTable row width does not match header count");
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = widths[c] - row[c].size();
      if (c != 0) out << "  ";
      if (alignment_ == Align::kRight) {
        out << std::string(pad, ' ') << row[c];
      } else {
        out << row[c] << std::string(pad, ' ');
      }
    }
    out << '\n';
  };

  emit_row(headers_);
  std::size_t rule_width = 2 * (headers_.size() - 1);
  for (const std::size_t w : widths) rule_width += w;
  out << std::string(rule_width, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string format_double(double value, int decimals) {
  LSIQ_EXPECT(decimals >= 0 && decimals <= 17,
              "format_double: decimals out of range");
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
  return buffer;
}

std::string format_probability(double p) {
  if (p != 0.0 && std::abs(p) < 1e-4) {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.3e", p);
    return buffer;
  }
  return format_double(p, 5);
}

std::string format_percent(double fraction, int decimals) {
  return format_double(fraction * 100.0, decimals) + "%";
}

}  // namespace lsiq::util
