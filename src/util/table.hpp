// Plain-text table and CSV rendering for the bench harnesses.
//
// Every bench binary regenerates one table or figure of the paper as an
// aligned text table (for eyeballing against the original) plus an optional
// CSV block (for replotting). Formatting lives here so the benches stay
// focused on the experiment itself.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace lsiq::util {

/// Column alignment inside a TextTable.
enum class Align { kLeft, kRight };

/// Minimal aligned-text table builder.
///
///     TextTable t({"f", "r(f)"});
///     t.add_row({format_double(f, 2), format_double(r, 5)});
///     std::cout << t.to_string();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers,
                     Align alignment = Align::kRight);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Render with a header rule and two-space column gutters.
  [[nodiscard]] std::string to_string() const;

  /// Render as RFC-4180-ish CSV (no quoting — cells must not contain commas).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  Align alignment_;
};

/// Fixed-point decimal rendering ("0.0146" style, no scientific notation).
std::string format_double(double value, int decimals);

/// Render a probability either fixed-point or, below 10^-4, in scientific
/// notation so small reject rates stay readable.
std::string format_probability(double p);

/// Percentage with the given number of decimals, e.g. 0.85 -> "85.0%".
std::string format_percent(double fraction, int decimals = 1);

}  // namespace lsiq::util
