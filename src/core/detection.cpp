#include "core/detection.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/numeric.hpp"

namespace lsiq::quality {

namespace {

void require_urn(unsigned n, unsigned m, unsigned N) {
  LSIQ_EXPECT(N >= 1, "urn model requires N >= 1");
  LSIQ_EXPECT(m <= N, "urn model requires m <= N");
  LSIQ_EXPECT(n <= N, "urn model requires n <= N");
}

}  // namespace

double q0_exact(unsigned n, unsigned m, unsigned N) {
  require_urn(n, m, N);
  if (n == 0) return 1.0;
  if (m == 0) return 1.0;
  if (n > N - m) return 0.0;  // more faults than uncovered sites
  // log prod (N-m-i)/(N-i), i = 0..n-1 == log C(N-n, m) - log C(N, m).
  util::KahanSum log_q;
  for (unsigned i = 0; i < n; ++i) {
    log_q.add(std::log(static_cast<double>(N - m - i)) -
              std::log(static_cast<double>(N - i)));
  }
  return std::exp(log_q.value());
}

double q0_second_order(unsigned n, unsigned m, unsigned N) {
  require_urn(n, m, N);
  if (n == 0 || m == 0) return 1.0;
  if (m == N) return 0.0;
  const double f = static_cast<double>(m) / static_cast<double>(N);
  const double nn = static_cast<double>(n);
  const double correction = -f * nn * (nn - 1.0) /
                            (2.0 * static_cast<double>(N) * (1.0 - f));
  return std::pow(1.0 - f, nn) * std::exp(correction);
}

double q0_simple(unsigned n, double f) {
  LSIQ_EXPECT(f >= 0.0 && f <= 1.0, "q0_simple requires f in [0, 1]");
  return std::pow(1.0 - f, static_cast<double>(n));
}

double q0_simple_validity_ratio(unsigned n, unsigned m, unsigned N) {
  require_urn(n, m, N);
  if (m == 0) return 0.0;
  if (m == N) return std::numeric_limits<double>::infinity();
  const double f = static_cast<double>(m) / static_cast<double>(N);
  const double budget = static_cast<double>(N) * (1.0 - f) / f;
  return static_cast<double>(n) * static_cast<double>(n) / budget;
}

double qk_hypergeometric(unsigned k, unsigned n, unsigned m, unsigned N) {
  require_urn(n, m, N);
  LSIQ_EXPECT(k <= n, "qk requires k <= n");
  // q_k(n) = C(n, k) C(N-n, m-k) / C(N, m); zero outside the support.
  if (k > m) return 0.0;
  if (m - k > N - n) return 0.0;
  const double log_p =
      util::log_binomial(static_cast<std::int64_t>(n),
                         static_cast<std::int64_t>(k)) +
      util::log_binomial(static_cast<std::int64_t>(N - n),
                         static_cast<std::int64_t>(m - k)) -
      util::log_binomial(static_cast<std::int64_t>(N),
                         static_cast<std::int64_t>(m));
  return std::exp(log_p);
}

}  // namespace lsiq::quality
