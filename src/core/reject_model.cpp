#include "core/reject_model.hpp"

#include <cmath>

#include "core/detection.hpp"
#include "core/fault_distribution.hpp"
#include "util/error.hpp"
#include "util/numeric.hpp"

namespace lsiq::quality {

namespace {

void require_domain(double f, double y, double n0) {
  LSIQ_EXPECT(f >= 0.0 && f <= 1.0, "coverage f must be in [0, 1]");
  LSIQ_EXPECT(y >= 0.0 && y <= 1.0, "yield y must be in [0, 1]");
  LSIQ_EXPECT(n0 >= 1.0, "n0 must be >= 1");
}

}  // namespace

double escape_yield(double f, double y, double n0) {
  require_domain(f, y, n0);
  return (1.0 - f) * (1.0 - y) * std::exp(-(n0 - 1.0) * f);
}

double escape_yield_exact(double f, double y, double n0, unsigned N) {
  require_domain(f, y, n0);
  LSIQ_EXPECT(N >= 1, "escape_yield_exact requires N >= 1");
  const auto m = static_cast<unsigned>(
      std::lround(f * static_cast<double>(N)));
  const FaultDistribution dist(y, n0);

  // Sum q0_exact(n) p(n) for n >= 1 until the remaining Poisson tail is
  // negligible. q0 <= 1, so the truncated tail is bounded by the pmf tail;
  // past the mode the pmf decays super-exponentially, so both cutoffs
  // below leave a truncation error well under 1e-14 absolute.
  util::KahanSum acc;
  double tail = 1.0 - y;  // total defective mass not yet consumed
  for (unsigned n = 1; n <= N; ++n) {
    const double p = dist.pmf(n);
    tail -= p;
    acc.add(q0_exact(n, m, N) * p);
    if (n > static_cast<unsigned>(n0) && (tail < 1e-15 || p < 1e-18)) {
      break;
    }
  }
  return acc.value();
}

double field_reject_rate(double f, double y, double n0) {
  const double ybg = escape_yield(f, y, n0);
  if (y + ybg == 0.0) return 0.0;  // nothing ships at all
  return ybg / (y + ybg);
}

double field_reject_rate_exact(double f, double y, double n0, unsigned N) {
  const double ybg = escape_yield_exact(f, y, n0, N);
  if (y + ybg == 0.0) return 0.0;
  return ybg / (y + ybg);
}

double reject_fraction(double f, double y, double n0) {
  require_domain(f, y, n0);
  return (1.0 - y) * (1.0 - (1.0 - f) * std::exp(-(n0 - 1.0) * f));
}

double reject_fraction_slope_at_zero(double y, double n0) {
  require_domain(0.0, y, n0);
  return (1.0 - y) * n0;
}

double reject_fraction_slope(double f, double y, double n0) {
  require_domain(f, y, n0);
  return (1.0 - y) * (1.0 + (1.0 - f) * (n0 - 1.0)) *
         std::exp(-(n0 - 1.0) * f);
}

double yield_for_reject_rate(double f, double r, double n0) {
  LSIQ_EXPECT(r >= 0.0 && r < 1.0, "reject rate must be in [0, 1)");
  require_domain(f, 0.5, n0);
  const double escape_term = (1.0 - f) * std::exp(-(n0 - 1.0) * f);
  const double numerator = (1.0 - r) * escape_term;
  const double denominator = r + numerator;
  if (denominator == 0.0) {
    // f == 1 and r == 0: every shipped chip is good at any yield; Eq. 11
    // is indeterminate. Return 0 (the curve's limit in the figures).
    return 0.0;
  }
  return numerator / denominator;
}

double escape_yield_mixed(double f, double y, double n0, double alpha) {
  require_domain(f, y, n0);
  LSIQ_EXPECT(alpha > 0.0, "mixed model requires alpha > 0");
  // E[(1-f)^(1+M)] with M ~ NegBin(alpha, mean n0-1): the NB probability
  // generating function at z = 1-f is (1 + (n0-1)(1-z)/alpha)^-alpha.
  const double pgf =
      std::pow(1.0 + (n0 - 1.0) * f / alpha, -alpha);
  return (1.0 - f) * (1.0 - y) * pgf;
}

double field_reject_rate_mixed(double f, double y, double n0, double alpha) {
  const double ybg = escape_yield_mixed(f, y, n0, alpha);
  if (y + ybg == 0.0) return 0.0;
  return ybg / (y + ybg);
}

double reject_fraction_mixed(double f, double y, double n0, double alpha) {
  require_domain(f, y, n0);
  LSIQ_EXPECT(alpha > 0.0, "mixed model requires alpha > 0");
  const double pgf = std::pow(1.0 + (n0 - 1.0) * f / alpha, -alpha);
  return (1.0 - y) * (1.0 - (1.0 - f) * pgf);
}

}  // namespace lsiq::quality
