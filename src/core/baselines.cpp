#include "core/baselines.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/numeric.hpp"

namespace lsiq::quality {

double wadsack_reject_rate(double f, double y) {
  LSIQ_EXPECT(f >= 0.0 && f <= 1.0, "coverage f must be in [0, 1]");
  LSIQ_EXPECT(y >= 0.0 && y <= 1.0, "yield y must be in [0, 1]");
  return (1.0 - y) * (1.0 - f);
}

double wadsack_required_coverage(double r, double y) {
  LSIQ_EXPECT(r >= 0.0 && r < 1.0, "reject rate must be in [0, 1)");
  LSIQ_EXPECT(y >= 0.0 && y < 1.0,
              "wadsack_required_coverage requires y in [0, 1)");
  return util::clamp01(1.0 - r / (1.0 - y));
}

double williams_brown_defect_level(double f, double y) {
  LSIQ_EXPECT(f >= 0.0 && f <= 1.0, "coverage f must be in [0, 1]");
  LSIQ_EXPECT(y > 0.0 && y <= 1.0,
              "williams_brown_defect_level requires y in (0, 1]");
  return 1.0 - std::pow(y, 1.0 - f);
}

double williams_brown_required_coverage(double r, double y) {
  LSIQ_EXPECT(r >= 0.0 && r < 1.0, "reject rate must be in [0, 1)");
  LSIQ_EXPECT(y > 0.0 && y < 1.0,
              "williams_brown_required_coverage requires y in (0, 1)");
  return util::clamp01(1.0 - std::log1p(-r) / std::log(y));
}

}  // namespace lsiq::quality
