// Determination of n0 from production-lot test data (Section 5).
//
// The experimental procedure: apply an ordered pattern set to a lot,
// record each chip's first failing pattern, convert pattern indices to
// cumulative fault coverage via the simulator's coverage curve, and plot
// the cumulative fraction of rejected chips against coverage. Four
// estimators recover n0 from those (coverage, fraction-failed) points:
//
//   * initial slope (Eq. 10): n0 ~= P'(0) / (1-y), with P'(0) read from
//     the earliest strobes — the paper's quick estimate (8.2/0.93 = 8.8
//     in Section 7);
//   * discrete curve fit over integer n0, the paper's Fig. 5 procedure;
//   * continuous least squares (Brent on the SSE);
//   * maximum likelihood on the binned first-fail counts (multinomial).
//
// When the yield itself is unknown, a joint (y, n0) least-squares fit is
// provided; the paper notes P'(0) alone is then a safe (pessimistic)
// stand-in for n0.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

namespace lsiq::quality {

/// One experimental point: tests up to cumulative coverage `coverage`
/// rejected `fraction_failed` of the lot (Table 1's columns 1 and 3).
struct CoveragePoint {
  double coverage = 0.0;
  double fraction_failed = 0.0;
};

struct SlopeEstimate {
  double p_prime_zero = 0.0;  ///< estimated P'(0)
  double n0 = 1.0;            ///< P'(0) / (1 - y)
  std::size_t points_used = 0;
};

/// Initial-slope estimator. Uses regression through the origin over the
/// points with coverage <= max_coverage (at least the first point).
SlopeEstimate estimate_n0_slope(const std::vector<CoveragePoint>& points,
                                double yield, double max_coverage = 0.10);

/// The paper's Fig. 5 procedure: best integer n0 in [1, n0_max] by sum of
/// squared errors against P(f; y, n0).
int estimate_n0_discrete(const std::vector<CoveragePoint>& points,
                         double yield, int n0_max = 30);

struct FitResult {
  double n0 = 1.0;
  double sse = 0.0;        ///< sum of squared errors at the optimum
  bool converged = false;
};

/// Continuous least-squares fit of n0 over [1, n0_hi].
FitResult estimate_n0_least_squares(const std::vector<CoveragePoint>& points,
                                    double yield, double n0_hi = 100.0);

struct MleResult {
  double n0 = 1.0;
  double log_likelihood = 0.0;
  bool converged = false;
};

/// Maximum-likelihood estimate from binned first-fail data.
/// `strobe_coverage` holds the cumulative coverage at each strobe (strictly
/// increasing); `first_fail_counts[i]` is the number of chips whose first
/// failure occurred at strobe i; `passed_count` chips passed every strobe.
/// The likelihood is multinomial with cell probabilities
/// P(f_i) - P(f_{i-1}) and survivor mass 1 - P(f_last).
MleResult estimate_n0_mle(const std::vector<double>& strobe_coverage,
                          const std::vector<std::size_t>& first_fail_counts,
                          std::size_t passed_count, double yield,
                          double n0_hi = 100.0);

struct BootstrapInterval {
  double point = 1.0;   ///< estimate on the original data
  double lower = 1.0;   ///< lower percentile bound
  double upper = 1.0;   ///< upper percentile bound
  std::size_t replicates = 0;
};

/// Percentile-bootstrap confidence interval for the least-squares n0.
///
/// The paper reports a single n0 with no uncertainty; a 277-chip lot has
/// real sampling error, quantified here by resampling chips with
/// replacement from the observed first-fail histogram (the same binned
/// data the MLE consumes: `first_fail_counts[i]` chips first failed at
/// strobe i, `passed_count` passed everything) and refitting each
/// replicate.
BootstrapInterval bootstrap_n0_interval(
    const std::vector<double>& strobe_coverage,
    const std::vector<std::size_t>& first_fail_counts,
    std::size_t passed_count, double yield, std::size_t replicates = 200,
    double confidence = 0.95, std::uint64_t seed = 1);

struct JointFit {
  double yield = 0.0;
  double n0 = 1.0;
  double sse = 0.0;
  bool converged = false;
};

/// Least-squares fit of (y, n0) together for the case where the process
/// yield is not known independently. Alternating one-dimensional Brent
/// minimizations (the SSE is well-behaved in each coordinate).
JointFit estimate_yield_and_n0(const std::vector<CoveragePoint>& points,
                               double n0_hi = 100.0, int rounds = 40);

}  // namespace lsiq::quality
