// Baseline quality models the paper argues against or that later became
// standard reference points.
//
// Wadsack (BSTJ 1978, the paper's ref [5]) assumed at most the trivial
// relation between escapes and coverage, giving r = (1-y)(1-f). Section 7
// shows it demands 99% / 99.9% coverage where the Poisson model needs
// 80% / 95% — the paper's headline comparison.
//
// Williams & Brown (contemporaneous, IEEE TC 1981) give the defect level
// DL = 1 - y^(1-f); it behaves like a multi-fault model with n tied to the
// yield instead of a free n0. Included to make the comparison three-way.
#pragma once

namespace lsiq::quality {

/// Wadsack's reject rate: r = (1-y)(1-f).
double wadsack_reject_rate(double f, double y);

/// Coverage Wadsack's model demands for reject rate r: f = 1 - r/(1-y),
/// clamped to [0, 1] (0 when untested product already meets the target).
double wadsack_required_coverage(double r, double y);

/// Williams-Brown defect level: DL(f) = 1 - y^(1-f).
double williams_brown_defect_level(double f, double y);

/// Coverage Williams-Brown demands for defect level r:
/// f = 1 - ln(1-r)/ln(y). y in (0, 1); clamped to [0, 1].
double williams_brown_required_coverage(double r, double y);

}  // namespace lsiq::quality
