#include "core/coverage_requirement.hpp"

#include "core/reject_model.hpp"
#include "util/brent.hpp"
#include "util/error.hpp"
#include "util/numeric.hpp"

namespace lsiq::quality {

namespace {

double invert_monotone_reject(double r_target, double at_zero,
                              const std::function<double(double)>& reject) {
  LSIQ_EXPECT(r_target > 0.0 && r_target < 1.0,
              "required coverage needs r_target in (0, 1)");
  if (at_zero <= r_target) {
    return 0.0;  // even untested product is good enough
  }
  // reject(f) - r_target changes sign on [0, 1]: positive at 0 (checked),
  // and reject(1) = 0 < r_target.
  const util::RootResult root = util::find_root_brent(
      [&](double f) { return reject(f) - r_target; }, 0.0, 1.0, 1e-13);
  if (!root.converged) {
    throw NumericError("required_fault_coverage: root search diverged");
  }
  return util::clamp01(root.x);
}

}  // namespace

double required_fault_coverage(double r_target, double y, double n0) {
  LSIQ_EXPECT(y > 0.0 && y <= 1.0,
              "required_fault_coverage needs yield in (0, 1] — at zero "
              "yield no shipped chip is good at any coverage");
  return invert_monotone_reject(
      r_target, field_reject_rate(0.0, y, n0),
      [&](double f) { return field_reject_rate(f, y, n0); });
}

double required_fault_coverage_mixed(double r_target, double y, double n0,
                                     double alpha) {
  LSIQ_EXPECT(y > 0.0 && y <= 1.0,
              "required_fault_coverage_mixed needs yield in (0, 1]");
  return invert_monotone_reject(
      r_target, field_reject_rate_mixed(0.0, y, n0, alpha),
      [&](double f) { return field_reject_rate_mixed(f, y, n0, alpha); });
}

RequirementCurve requirement_curve(double r_target, double n0,
                                   std::size_t points) {
  LSIQ_EXPECT(points >= 2, "requirement_curve needs >= 2 points");
  RequirementCurve curve;
  curve.reject_target = r_target;
  curve.n0 = n0;
  // Exclude both endpoints: y=0 ships nothing, y=1 needs no testing.
  const std::vector<double> ys =
      util::linspace(1.0 / static_cast<double>(points + 1),
                     static_cast<double>(points) /
                         static_cast<double>(points + 1),
                     points);
  curve.yields = ys;
  curve.coverages.reserve(points);
  for (const double y : ys) {
    curve.coverages.push_back(required_fault_coverage(r_target, y, n0));
  }
  return curve;
}

}  // namespace lsiq::quality
