// Required fault coverage for a target field reject rate (Section 6).
//
// Eq. 8 is monotone decreasing in f, so "what coverage do I need for
// r <= r_target?" has a unique answer found by bracketed root search.
// The requirement_curve helper sweeps yield to regenerate Figs. 2-4.
#pragma once

#include <cstddef>
#include <vector>

namespace lsiq::quality {

/// Smallest coverage f with field_reject_rate(f, y, n0) <= r_target.
/// Returns 0 when even untested product meets the target (r(0) = 1-y <=
/// r_target). r_target must be in (0, 1).
double required_fault_coverage(double r_target, double y, double n0);

/// Same under the gamma-mixed model.
double required_fault_coverage_mixed(double r_target, double y, double n0,
                                     double alpha);

/// One curve of Figs. 2-4: required coverage as a function of yield for a
/// fixed reject-rate target and n0.
struct RequirementCurve {
  double reject_target = 0.0;
  double n0 = 1.0;
  std::vector<double> yields;
  std::vector<double> coverages;  ///< required f, parallel to `yields`
};

/// Sweep yield over (0, 1) with `points` samples (endpoints excluded: at
/// y = 0 nothing ships, at y = 1 nothing is defective).
RequirementCurve requirement_curve(double r_target, double n0,
                                   std::size_t points = 99);

}  // namespace lsiq::quality
