// The paper's central results: escape yield, field reject rate and tester
// reject fraction as functions of fault coverage (Sections 4-6).
//
//   Ybg(f) = (1-f)(1-y) e^{-(n0-1) f}                          (Eq. 7)
//   r(f)   = Ybg(f) / (y + Ybg(f))                             (Eq. 8)
//   P(f)   = (1-y) [1 - (1-f) e^{-(n0-1) f}]                   (Eq. 9)
//   P'(0)  = (1-y) n0                                          (Eq. 10)
//   y(f,r) = (1-r)(1-f)e^{-(n0-1)f} / [r + (1-r)(1-f)e^{-(n0-1)f}] (Eq. 11)
//
// The closed forms use the simple escape approximation (A.3); the exact
// variants evaluate Eq. 6 as a sum over the fault distribution with the
// exact hypergeometric q0 (A.1), so the approximation error the paper
// bounds in its Appendix can be measured (bench/ablation_approximations).
//
// Gamma-mixed variants (suffix _mixed) generalize the defective-chip fault
// count to a negative binomial — the direction of the paper's ref [15].
#pragma once

namespace lsiq::quality {

/// Probability that a manufactured chip is defective *and* passes tests
/// with coverage f (Eq. 7). f, y in [0, 1]; n0 >= 1.
double escape_yield(double f, double y, double n0);

/// Eq. 6 evaluated exactly: sum_n q0_exact(n) p(n) over the shifted-Poisson
/// fault distribution, with a universe of N faults (m = round(f N)). The
/// series is truncated once the Poisson tail falls below 1e-18 relative.
double escape_yield_exact(double f, double y, double n0, unsigned N);

/// Field reject rate r(f) (Eq. 8): the fraction of shipped ("tested good")
/// chips that are in fact defective.
double field_reject_rate(double f, double y, double n0);

/// Exact-sum counterpart of field_reject_rate.
double field_reject_rate_exact(double f, double y, double n0, unsigned N);

/// Tester reject fraction P(f) (Eq. 9): the fraction of all chips rejected
/// by tests with coverage f. This is the curve fitted against lot data to
/// determine n0 (Section 5, Fig. 5).
double reject_fraction(double f, double y, double n0);

/// dP/df at f = 0 (Eq. 10) — equals the unconditional mean fault count
/// n_av = (1-y) n0, which is why the initial slope of the lot fallout
/// curve estimates n0.
double reject_fraction_slope_at_zero(double y, double n0);

/// Derivative of P at arbitrary f (used by estimator diagnostics):
/// P'(f) = (1-y) [1 + (1-f)(n0-1)] e^{-(n0-1) f}.
double reject_fraction_slope(double f, double y, double n0);

/// Eq. 11: the yield at which tests with coverage f deliver reject rate r.
/// This is the form the paper plots in Figs. 2-4.
double yield_for_reject_rate(double f, double r, double n0);

// ---- gamma-mixed (negative binomial) extension ----

/// Escape yield when the defective-chip fault count is 1 + NegBin with
/// shape alpha and mean n0-1: Ybg = (1-f)(1-y) (1 + (n0-1) f / alpha)^-alpha.
/// alpha -> infinity recovers escape_yield.
double escape_yield_mixed(double f, double y, double n0, double alpha);

/// Reject rate under the mixed model.
double field_reject_rate_mixed(double f, double y, double n0, double alpha);

/// Tester reject fraction under the mixed model.
double reject_fraction_mixed(double f, double y, double n0, double alpha);

}  // namespace lsiq::quality
