#include "core/estimation.hpp"

#include <algorithm>
#include <cmath>

#include "core/reject_model.hpp"
#include "util/brent.hpp"
#include "util/error.hpp"
#include "util/numeric.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace lsiq::quality {

namespace {

void require_points(const std::vector<CoveragePoint>& points) {
  LSIQ_EXPECT(!points.empty(), "estimation requires at least one point");
  for (const CoveragePoint& p : points) {
    LSIQ_EXPECT(p.coverage >= 0.0 && p.coverage <= 1.0,
                "coverage out of [0, 1]");
    LSIQ_EXPECT(p.fraction_failed >= 0.0 && p.fraction_failed <= 1.0,
                "fraction failed out of [0, 1]");
  }
}

double sse_for(const std::vector<CoveragePoint>& points, double yield,
               double n0) {
  util::KahanSum acc;
  for (const CoveragePoint& p : points) {
    const double err =
        reject_fraction(p.coverage, yield, n0) - p.fraction_failed;
    acc.add(err * err);
  }
  return acc.value();
}

}  // namespace

SlopeEstimate estimate_n0_slope(const std::vector<CoveragePoint>& points,
                                double yield, double max_coverage) {
  require_points(points);
  LSIQ_EXPECT(yield >= 0.0 && yield < 1.0,
              "slope estimator requires yield in [0, 1)");

  std::vector<double> xs;
  std::vector<double> ys;
  for (const CoveragePoint& p : points) {
    if (p.coverage <= max_coverage && p.coverage > 0.0) {
      xs.push_back(p.coverage);
      ys.push_back(p.fraction_failed);
    }
  }
  if (xs.empty()) {
    // Fall back to the single earliest strobe, exactly the paper's
    // P'(0) ~= 0.41 / 0.05 computation.
    const CoveragePoint first = *std::min_element(
        points.begin(), points.end(),
        [](const CoveragePoint& a, const CoveragePoint& b) {
          return a.coverage < b.coverage;
        });
    LSIQ_EXPECT(first.coverage > 0.0,
                "slope estimator needs a strobe with positive coverage");
    xs.push_back(first.coverage);
    ys.push_back(first.fraction_failed);
  }

  SlopeEstimate estimate;
  estimate.p_prime_zero = util::regression_through_origin(xs, ys);
  estimate.n0 = std::max(1.0, estimate.p_prime_zero / (1.0 - yield));
  estimate.points_used = xs.size();
  return estimate;
}

int estimate_n0_discrete(const std::vector<CoveragePoint>& points,
                         double yield, int n0_max) {
  require_points(points);
  LSIQ_EXPECT(n0_max >= 1, "estimate_n0_discrete requires n0_max >= 1");
  int best = 1;
  double best_sse = sse_for(points, yield, 1.0);
  for (int n0 = 2; n0 <= n0_max; ++n0) {
    const double sse = sse_for(points, yield, static_cast<double>(n0));
    if (sse < best_sse) {
      best_sse = sse;
      best = n0;
    }
  }
  return best;
}

FitResult estimate_n0_least_squares(const std::vector<CoveragePoint>& points,
                                    double yield, double n0_hi) {
  require_points(points);
  LSIQ_EXPECT(n0_hi > 1.0, "estimate_n0_least_squares requires n0_hi > 1");
  const util::MinimizeResult min = util::minimize_brent(
      [&](double n0) { return sse_for(points, yield, n0); }, 1.0, n0_hi);
  FitResult result;
  result.n0 = min.x;
  result.sse = min.fx;
  result.converged = min.converged;
  return result;
}

MleResult estimate_n0_mle(const std::vector<double>& strobe_coverage,
                          const std::vector<std::size_t>& first_fail_counts,
                          std::size_t passed_count, double yield,
                          double n0_hi) {
  LSIQ_EXPECT(strobe_coverage.size() == first_fail_counts.size(),
              "estimate_n0_mle: strobe/count size mismatch");
  LSIQ_EXPECT(!strobe_coverage.empty(), "estimate_n0_mle: no strobes");
  for (std::size_t i = 0; i < strobe_coverage.size(); ++i) {
    LSIQ_EXPECT(strobe_coverage[i] > 0.0 && strobe_coverage[i] <= 1.0,
                "estimate_n0_mle: strobe coverage out of (0, 1]");
    if (i > 0) {
      LSIQ_EXPECT(strobe_coverage[i] > strobe_coverage[i - 1],
                  "estimate_n0_mle: strobes must be increasing");
    }
  }

  auto negative_log_likelihood = [&](double n0) {
    util::KahanSum nll;
    double prev = 0.0;  // P(0) = 0
    for (std::size_t i = 0; i < strobe_coverage.size(); ++i) {
      const double cell =
          reject_fraction(strobe_coverage[i], yield, n0) - prev;
      prev = reject_fraction(strobe_coverage[i], yield, n0);
      if (first_fail_counts[i] > 0) {
        // Guard against degenerate cells; a zero cell with observations is
        // infinitely unlikely.
        if (cell <= 0.0) return 1e30;
        nll.add(-static_cast<double>(first_fail_counts[i]) * std::log(cell));
      }
    }
    const double survivor = 1.0 - prev;
    if (passed_count > 0) {
      if (survivor <= 0.0) return 1e30;
      nll.add(-static_cast<double>(passed_count) * std::log(survivor));
    }
    return nll.value();
  };

  const util::MinimizeResult min =
      util::minimize_brent(negative_log_likelihood, 1.0, n0_hi);
  MleResult result;
  result.n0 = min.x;
  result.log_likelihood = -min.fx;
  result.converged = min.converged;
  return result;
}

BootstrapInterval bootstrap_n0_interval(
    const std::vector<double>& strobe_coverage,
    const std::vector<std::size_t>& first_fail_counts,
    std::size_t passed_count, double yield, std::size_t replicates,
    double confidence, std::uint64_t seed) {
  LSIQ_EXPECT(strobe_coverage.size() == first_fail_counts.size(),
              "bootstrap_n0_interval: strobe/count size mismatch");
  LSIQ_EXPECT(!strobe_coverage.empty(), "bootstrap_n0_interval: no strobes");
  LSIQ_EXPECT(replicates >= 10,
              "bootstrap_n0_interval requires >= 10 replicates");
  LSIQ_EXPECT(confidence > 0.0 && confidence < 1.0,
              "bootstrap_n0_interval: confidence in (0, 1)");

  std::size_t chip_count = passed_count;
  for (const std::size_t c : first_fail_counts) chip_count += c;
  LSIQ_EXPECT(chip_count > 0, "bootstrap_n0_interval: empty lot");

  auto points_from_counts =
      [&](const std::vector<std::size_t>& counts) {
        std::vector<CoveragePoint> points;
        points.reserve(strobe_coverage.size());
        std::size_t cumulative = 0;
        for (std::size_t i = 0; i < strobe_coverage.size(); ++i) {
          cumulative += counts[i];
          points.push_back(CoveragePoint{
              strobe_coverage[i],
              static_cast<double>(cumulative) /
                  static_cast<double>(chip_count)});
        }
        return points;
      };

  BootstrapInterval interval;
  interval.replicates = replicates;
  interval.point =
      estimate_n0_least_squares(points_from_counts(first_fail_counts), yield)
          .n0;

  // Empirical CDF over categories (bins + survivor class) for resampling.
  std::vector<double> cdf(first_fail_counts.size());
  double running = 0.0;
  for (std::size_t i = 0; i < first_fail_counts.size(); ++i) {
    running += static_cast<double>(first_fail_counts[i]) /
               static_cast<double>(chip_count);
    cdf[i] = running;
  }

  util::Rng rng(seed);
  std::vector<double> estimates;
  estimates.reserve(replicates);
  std::vector<std::size_t> resampled(first_fail_counts.size());
  for (std::size_t r = 0; r < replicates; ++r) {
    std::fill(resampled.begin(), resampled.end(), 0);
    for (std::size_t chip = 0; chip < chip_count; ++chip) {
      const double u = rng.uniform();
      for (std::size_t i = 0; i < cdf.size(); ++i) {
        if (u < cdf[i]) {
          ++resampled[i];
          break;
        }
      }
      // u beyond the last bin: a passing chip; contributes no bin count.
    }
    estimates.push_back(
        estimate_n0_least_squares(points_from_counts(resampled), yield).n0);
  }

  const double alpha = (1.0 - confidence) / 2.0;
  interval.lower = util::percentile(estimates, alpha * 100.0);
  interval.upper = util::percentile(std::move(estimates),
                                    (1.0 - alpha) * 100.0);
  return interval;
}

JointFit estimate_yield_and_n0(const std::vector<CoveragePoint>& points,
                               double n0_hi, int rounds) {
  require_points(points);
  LSIQ_EXPECT(rounds >= 1, "estimate_yield_and_n0 requires rounds >= 1");

  // Initialize yield from the plateau of the fallout curve: the largest
  // observed fraction failed bounds 1 - y from below.
  double max_failed = 0.0;
  for (const CoveragePoint& p : points) {
    max_failed = std::max(max_failed, p.fraction_failed);
  }
  JointFit fit;
  fit.yield = util::clamp01(1.0 - max_failed);
  fit.n0 = 2.0;

  double prev_sse = 1e300;
  for (int round = 0; round < rounds; ++round) {
    const util::MinimizeResult n0_step = util::minimize_brent(
        [&](double n0) { return sse_for(points, fit.yield, n0); }, 1.0,
        n0_hi);
    fit.n0 = n0_step.x;
    const util::MinimizeResult y_step = util::minimize_brent(
        [&](double y) { return sse_for(points, y, fit.n0); }, 0.0,
        1.0 - 1e-9);
    fit.yield = y_step.x;
    fit.sse = y_step.fx;
    if (std::abs(prev_sse - fit.sse) <=
        1e-14 * std::max(1.0, std::abs(fit.sse))) {
      fit.converged = true;
      break;
    }
    prev_sse = fit.sse;
  }
  return fit;
}

}  // namespace lsiq::quality
