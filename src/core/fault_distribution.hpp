// The paper's fault-distribution model (Section 3).
//
// A chip is fault-free with probability y (the yield). A defective chip
// carries n >= 1 single-stuck-type-equivalent faults, with n following a
// Poisson density shifted right by one unit (Eq. 1):
//
//     p(n) = (1-y) * (n0-1)^(n-1) / (n-1)! * exp(-(n0-1)),   n = 1, 2, ...
//     p(0) = y
//
// where n0 is the average number of faults on a *defective* chip — the
// model's key parameter, determined experimentally (Section 5). The
// unconditional mean is n_av = (1-y) * n0 (Eq. 2).
//
// A gamma-mixed variant (negative-binomial fault counts) is provided as the
// extension pointed to by the paper's reference [15] (Griffin's "mixed
// Poisson" model): it lets the per-chip fault mean itself vary chip to chip.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace lsiq::quality {

class FaultDistribution {
 public:
  /// yield in [0, 1]; n0 >= 1 (a defective chip has at least one fault).
  FaultDistribution(double yield, double n0);

  [[nodiscard]] double yield() const noexcept { return yield_; }
  [[nodiscard]] double n0() const noexcept { return n0_; }

  /// p(n), Eq. 1 (p(0) = yield).
  [[nodiscard]] double pmf(unsigned n) const;

  /// P(N <= n).
  [[nodiscard]] double cdf(unsigned n) const;

  /// n_av = (1-y) * n0, Eq. 2.
  [[nodiscard]] double mean() const;

  /// Variance of the fault count (shifted-Poisson mixture with the zero
  /// spike): Var = (1-y)*(n0-1) + y*(1-y)*n0^2 + (1-y)*... computed in
  /// closed form; exposed mostly for distribution tests.
  [[nodiscard]] double variance() const;

  /// pmf of n conditioned on the chip being defective (n >= 1).
  [[nodiscard]] double defective_pmf(unsigned n) const;

  /// Draw a per-chip fault count: 0 with probability y, else
  /// 1 + Poisson(n0 - 1). The wafer simulator's ground truth.
  [[nodiscard]] unsigned sample(util::Rng& rng) const;

 private:
  double yield_;
  double n0_;
};

/// Gamma-mixed (negative binomial) variant: on a defective chip,
/// n = 1 + M with M ~ NegBin(shape=alpha, mean=n0-1). alpha -> infinity
/// recovers the shifted Poisson.
class MixedFaultDistribution {
 public:
  MixedFaultDistribution(double yield, double n0, double alpha);

  [[nodiscard]] double yield() const noexcept { return yield_; }
  [[nodiscard]] double n0() const noexcept { return n0_; }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }

  [[nodiscard]] double pmf(unsigned n) const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] unsigned sample(util::Rng& rng) const;

 private:
  double yield_;
  double n0_;
  double alpha_;
};

}  // namespace lsiq::quality
