// High-level facade tying the model together.
//
// A QualityAnalyzer represents one characterized product: (yield, n0),
// either given directly or fitted from lot data via the Section 5
// procedure. It answers the questions a test engineer asks:
// "what reject rate does my current coverage buy?", "what coverage do I
// need for 1000 DPPM?", and "what do the older models claim?".
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/estimation.hpp"

namespace lsiq::quality {

/// How n0 was obtained, for reporting.
enum class CharacterizationMethod {
  kGiven,         ///< parameters supplied directly
  kSlope,         ///< Eq. 10 initial slope
  kDiscreteFit,   ///< Fig. 5 family-of-curves fit (integer n0)
  kLeastSquares,  ///< continuous SSE fit
};

class QualityAnalyzer {
 public:
  /// Known parameters (e.g. from a previous characterization).
  QualityAnalyzer(double yield, double n0);

  /// Characterize from lot data: (coverage, cumulative fraction failed)
  /// points and an independently known yield. `method` selects the
  /// estimator (kGiven is invalid here).
  static QualityAnalyzer from_lot_data(
      const std::vector<CoveragePoint>& points, double yield,
      CharacterizationMethod method = CharacterizationMethod::kLeastSquares);

  /// Characterize when the yield is unknown: joint (y, n0) fit.
  static QualityAnalyzer from_lot_data_unknown_yield(
      const std::vector<CoveragePoint>& points);

  [[nodiscard]] double yield() const noexcept { return yield_; }
  [[nodiscard]] double n0() const noexcept { return n0_; }
  [[nodiscard]] CharacterizationMethod method() const noexcept {
    return method_;
  }

  /// Field reject rate at a given stuck-at coverage (Eq. 8).
  [[nodiscard]] double reject_rate(double coverage) const;

  /// Reject rate expressed in defective parts per million shipped.
  [[nodiscard]] double dppm(double coverage) const;

  /// Probability a defective chip ships (Eq. 7).
  [[nodiscard]] double escape_yield_at(double coverage) const;

  /// Fraction of the lot the tester rejects at a coverage (Eq. 9).
  [[nodiscard]] double tester_fallout(double coverage) const;

  /// Coverage needed for a target reject rate (Section 6).
  [[nodiscard]] double required_coverage(double reject_target) const;

  /// Coverage the Wadsack [5] model would demand for the same target.
  [[nodiscard]] double wadsack_coverage(double reject_target) const;

  /// Coverage the Williams-Brown model would demand for the same target.
  [[nodiscard]] double williams_brown_coverage(double reject_target) const;

  /// Multi-line human-readable summary (used by examples).
  [[nodiscard]] std::string report(
      const std::vector<double>& reject_targets = {0.01, 0.005,
                                                   0.001}) const;

 private:
  QualityAnalyzer(double yield, double n0, CharacterizationMethod method);

  double yield_;
  double n0_;
  CharacterizationMethod method_;
};

/// Short name for a characterization method ("least-squares fit", ...).
std::string method_name(CharacterizationMethod method);

/// The spec-facing selector names used by lsiq::flow and the lsiq_flow
/// CLI: "given", "slope", "discrete", "least_squares". Returns nullopt
/// for an unknown name — the name list lives here so the flow validator
/// and the estimator dispatch cannot drift apart.
std::optional<CharacterizationMethod> characterization_method_from_name(
    const std::string& name);

}  // namespace lsiq::quality
