#include "core/quality_analyzer.hpp"

#include <sstream>

#include "core/baselines.hpp"
#include "core/coverage_requirement.hpp"
#include "core/reject_model.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace lsiq::quality {

QualityAnalyzer::QualityAnalyzer(double yield, double n0)
    : QualityAnalyzer(yield, n0, CharacterizationMethod::kGiven) {}

QualityAnalyzer::QualityAnalyzer(double yield, double n0,
                                 CharacterizationMethod method)
    : yield_(yield), n0_(n0), method_(method) {
  LSIQ_EXPECT(yield > 0.0 && yield < 1.0,
              "QualityAnalyzer requires yield in (0, 1)");
  LSIQ_EXPECT(n0 >= 1.0, "QualityAnalyzer requires n0 >= 1");
}

QualityAnalyzer QualityAnalyzer::from_lot_data(
    const std::vector<CoveragePoint>& points, double yield,
    CharacterizationMethod method) {
  switch (method) {
    case CharacterizationMethod::kSlope: {
      const SlopeEstimate estimate = estimate_n0_slope(points, yield);
      return QualityAnalyzer(yield, estimate.n0, method);
    }
    case CharacterizationMethod::kDiscreteFit: {
      const int n0 = estimate_n0_discrete(points, yield);
      return QualityAnalyzer(yield, static_cast<double>(n0), method);
    }
    case CharacterizationMethod::kLeastSquares: {
      const FitResult fit = estimate_n0_least_squares(points, yield);
      return QualityAnalyzer(yield, fit.n0, method);
    }
    case CharacterizationMethod::kGiven:
      break;
  }
  throw Error("from_lot_data: method must be an estimator");
}

QualityAnalyzer QualityAnalyzer::from_lot_data_unknown_yield(
    const std::vector<CoveragePoint>& points) {
  const JointFit fit = estimate_yield_and_n0(points);
  return QualityAnalyzer(fit.yield, fit.n0,
                         CharacterizationMethod::kLeastSquares);
}

double QualityAnalyzer::reject_rate(double coverage) const {
  return field_reject_rate(coverage, yield_, n0_);
}

double QualityAnalyzer::dppm(double coverage) const {
  return reject_rate(coverage) * 1e6;
}

double QualityAnalyzer::escape_yield_at(double coverage) const {
  return escape_yield(coverage, yield_, n0_);
}

double QualityAnalyzer::tester_fallout(double coverage) const {
  return reject_fraction(coverage, yield_, n0_);
}

double QualityAnalyzer::required_coverage(double reject_target) const {
  return required_fault_coverage(reject_target, yield_, n0_);
}

double QualityAnalyzer::wadsack_coverage(double reject_target) const {
  return wadsack_required_coverage(reject_target, yield_);
}

double QualityAnalyzer::williams_brown_coverage(double reject_target) const {
  return williams_brown_required_coverage(reject_target, yield_);
}

std::string QualityAnalyzer::report(
    const std::vector<double>& reject_targets) const {
  std::ostringstream out;
  out << "Product characterization (" << method_name(method_) << ")\n"
      << "  yield y  = " << util::format_double(yield_, 4) << "\n"
      << "  n0       = " << util::format_double(n0_, 2)
      << "  (mean faults on a defective chip)\n"
      << "  n_av     = " << util::format_double((1.0 - yield_) * n0_, 2)
      << "  (mean faults per chip, Eq. 2)\n\n";

  util::TextTable table({"target r", "required f (this model)",
                         "Wadsack [5]", "Williams-Brown"});
  for (const double r : reject_targets) {
    table.add_row({util::format_probability(r),
                   util::format_percent(required_coverage(r)),
                   util::format_percent(wadsack_coverage(r)),
                   util::format_percent(williams_brown_coverage(r))});
  }
  out << table.to_string();
  return out.str();
}

std::optional<CharacterizationMethod> characterization_method_from_name(
    const std::string& name) {
  if (name == "given") return CharacterizationMethod::kGiven;
  if (name == "slope") return CharacterizationMethod::kSlope;
  if (name == "discrete") return CharacterizationMethod::kDiscreteFit;
  if (name == "least_squares") return CharacterizationMethod::kLeastSquares;
  return std::nullopt;
}

std::string method_name(CharacterizationMethod method) {
  switch (method) {
    case CharacterizationMethod::kGiven:        return "given parameters";
    case CharacterizationMethod::kSlope:        return "initial-slope estimate";
    case CharacterizationMethod::kDiscreteFit:  return "discrete curve fit";
    case CharacterizationMethod::kLeastSquares: return "least-squares fit";
  }
  return "?";
}

}  // namespace lsiq::quality
