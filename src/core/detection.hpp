// Detection probabilities: the urn model of Section 4 and the Appendix.
//
// With N possible faults of which n are present, and tests covering m
// faults (coverage f = m/N), the number of detected faults is
// hypergeometric (Eq. 4). The chip escapes when zero of its n faults are
// covered (Eq. 5 / A.1), for which the paper derives two approximations:
//
//   (A.1)  q0(n) = C(N-n, m) / C(N, m)            exact
//   (A.2)  q0(n) ~= (1-f)^n * exp(-f n(n-1) / (2N(1-f)))
//   (A.3)  q0(n) ~= (1-f)^n        valid while n^2 << N(1-f)/f
//
// Fig. 6 of the paper compares the three; bench/fig6_q0_approximations
// regenerates that comparison.
#pragma once

namespace lsiq::quality {

/// Exact escape probability (A.1), computed as the log-space product
/// prod_{i=0}^{n-1} (N-m-i)/(N-i). Zero when n > N - m. Requires
/// 0 <= m <= N, 0 <= n <= N, N >= 1.
double q0_exact(unsigned n, unsigned m, unsigned N);

/// Second-order approximation (A.2).
double q0_second_order(unsigned n, unsigned m, unsigned N);

/// Simple approximation (A.3): (1-f)^n — the form used throughout the
/// paper's closed-form analysis.
double q0_simple(unsigned n, double f);

/// The validity figure of (A.3): n^2 / (N(1-f)/f). Small (<< 1) means
/// (A.3) is trustworthy; the Appendix states the condition as
/// n << sqrt(N(1-f)/f). Returns +infinity when f == 1.
double q0_simple_validity_ratio(unsigned n, unsigned m, unsigned N);

/// Hypergeometric probability of detecting exactly k of the chip's n
/// faults with tests covering m of N possible faults (Eq. 4).
double qk_hypergeometric(unsigned k, unsigned n, unsigned m, unsigned N);

}  // namespace lsiq::quality
