#include "core/fault_distribution.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/numeric.hpp"

namespace lsiq::quality {

FaultDistribution::FaultDistribution(double yield, double n0)
    : yield_(yield), n0_(n0) {
  LSIQ_EXPECT(yield >= 0.0 && yield <= 1.0,
              "FaultDistribution requires yield in [0, 1]");
  LSIQ_EXPECT(n0 >= 1.0, "FaultDistribution requires n0 >= 1");
}

double FaultDistribution::pmf(unsigned n) const {
  if (n == 0) return yield_;
  return (1.0 - yield_) * defective_pmf(n);
}

double FaultDistribution::defective_pmf(unsigned n) const {
  if (n == 0) return 0.0;
  const double lambda = n0_ - 1.0;
  const auto k = static_cast<double>(n - 1);
  if (lambda == 0.0) return n == 1 ? 1.0 : 0.0;
  const double log_p = k * std::log(lambda) - lambda -
                       util::log_factorial(static_cast<std::int64_t>(n) - 1);
  return std::exp(log_p);
}

double FaultDistribution::cdf(unsigned n) const {
  util::KahanSum acc;
  for (unsigned k = 0; k <= n; ++k) {
    acc.add(pmf(k));
  }
  return util::clamp01(acc.value());
}

double FaultDistribution::mean() const { return (1.0 - yield_) * n0_; }

double FaultDistribution::variance() const {
  // On a defective chip n = 1 + K, K ~ Poisson(n0 - 1):
  //   E[n | defective]   = n0
  //   E[n^2 | defective] = Var(K) + (E[K] + 1)^2 = (n0 - 1) + n0^2
  // Unconditionally E[n] = (1-y) n0, E[n^2] = (1-y) ((n0-1) + n0^2).
  const double second_moment = (1.0 - yield_) * ((n0_ - 1.0) + n0_ * n0_);
  const double m = mean();
  return second_moment - m * m;
}

unsigned FaultDistribution::sample(util::Rng& rng) const {
  if (rng.bernoulli(yield_)) return 0;
  return 1 + static_cast<unsigned>(rng.poisson(n0_ - 1.0));
}

MixedFaultDistribution::MixedFaultDistribution(double yield, double n0,
                                               double alpha)
    : yield_(yield), n0_(n0), alpha_(alpha) {
  LSIQ_EXPECT(yield >= 0.0 && yield <= 1.0,
              "MixedFaultDistribution requires yield in [0, 1]");
  LSIQ_EXPECT(n0 >= 1.0, "MixedFaultDistribution requires n0 >= 1");
  LSIQ_EXPECT(alpha > 0.0, "MixedFaultDistribution requires alpha > 0");
}

double MixedFaultDistribution::pmf(unsigned n) const {
  if (n == 0) return yield_;
  const double mean_extra = n0_ - 1.0;
  if (mean_extra == 0.0) return n == 1 ? 1.0 - yield_ : 0.0;
  // Negative binomial pmf for k = n - 1 extra faults.
  const auto k = static_cast<double>(n - 1);
  const double p = mean_extra / (mean_extra + alpha_);
  const double log_pmf =
      util::log_gamma(k + alpha_) -
      util::log_factorial(static_cast<std::int64_t>(n) - 1) -
      util::log_gamma(alpha_) + alpha_ * std::log1p(-p) + k * std::log(p);
  return (1.0 - yield_) * std::exp(log_pmf);
}

double MixedFaultDistribution::mean() const { return (1.0 - yield_) * n0_; }

unsigned MixedFaultDistribution::sample(util::Rng& rng) const {
  if (rng.bernoulli(yield_)) return 0;
  if (n0_ == 1.0) return 1;
  return 1 + static_cast<unsigned>(rng.negative_binomial(n0_ - 1.0, alpha_));
}

}  // namespace lsiq::quality
