#include "flow/flow.hpp"

#include <iterator>
#include <sstream>
#include <utility>

#include "analyze/analyze.hpp"
#include "analyze/implication.hpp"
#include "analyze/redundancy.hpp"
#include "analyze/testability.hpp"
#include "bist/misr.hpp"
#include "bist/session.hpp"
#include "core/fault_distribution.hpp"
#include "fault/shard.hpp"
#include "fault/strobe.hpp"
#include "fault_model/universe.hpp"
#include "sim/pattern_io.hpp"
#include "tpg/lfsr.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace lsiq::flow {

namespace {

/// Signature-grading workers for the misr path: the engine axis maps onto
/// BistSession's thread count ("serial" is rejected by validate()).
std::size_t misr_worker_count(const EngineSpec& engine) {
  if (engine.kind == "ppsfp") return 1;
  // ppsfp_mt and sharded: signature grading has no fault-range shard
  // loop, so "sharded" maps to its per-shard worker count.
  return engine.num_threads;  // ppsfp_mt: pool resolves 0 = all cores
}

/// The source axis minus an explicit source's pattern payload — what
/// FlowResult stores for self-describing reports without duplicating the
/// program (FlowResult::patterns is the canonical copy).
PatternSourceSpec strip_pattern_payload(const PatternSourceSpec& source) {
  PatternSourceSpec copy;
  copy.kind = source.kind;
  copy.pattern_count = source.pattern_count;
  copy.lfsr_width = source.lfsr_width;
  copy.lfsr_seed = source.lfsr_seed;
  copy.atpg = source.atpg;
  copy.atpg_compact = source.atpg_compact;
  copy.file = source.file;
  return copy;  // copy.patterns intentionally left empty
}

/// The spec's analyze section as analyzer options. validate() guaranteed
/// every policy name resolves.
analyze::Options analyze_options(const AnalyzeSpec& spec) {
  analyze::Options options;
  options.structure = *analyze::policy_from_name(spec.structure);
  options.dead_logic = *analyze::policy_from_name(spec.dead_logic);
  options.untestable = *analyze::policy_from_name(spec.untestable);
  options.testability = *analyze::policy_from_name(spec.testability);
  options.resistant_threshold = spec.resistant_threshold;
  return options;
}

}  // namespace

double FlowResult::final_coverage() const {
  LSIQ_EXPECT(curve.has_value(), "FlowResult: no coverage curve");
  return curve->final_coverage();
}

std::vector<quality::CoveragePoint> FlowResult::points() const {
  return wafer::coverage_points(table);
}

std::vector<analyze::Diagnostic> check(const fault::FaultList& faults,
                                       const FlowSpec& spec) {
  return check_detailed(faults, spec).diagnostics;
}

CheckOutcome check_detailed(const fault::FaultList& faults,
                            const FlowSpec& spec) {
  validate_or_throw(spec);
  CheckOutcome outcome;
  const analyze::Options options = analyze_options(spec.analyze);
  if (!options.any_enabled()) return outcome;
  analyze::Report report = analyze::analyze(faults.circuit(), options);
  outcome.diagnostics = std::move(report.diagnostics);
  if (options.testability != analyze::Policy::kOff) {
    const analyze::TestabilityReport testability =
        analyze::analyze_testability(faults);
    std::vector<analyze::Diagnostic> extra =
        analyze::testability_diagnostics(faults, testability, options);
    outcome.diagnostics.insert(outcome.diagnostics.end(),
                               std::make_move_iterator(extra.begin()),
                               std::make_move_iterator(extra.end()));
    // Keep the merged stream in the canonical rule/gate order so --check
    // output stays byte-stable regardless of which classes are enabled.
    analyze::sort_diagnostics(outcome.diagnostics);
  }
  if (analyze::has_errors(outcome.diagnostics)) {
    throw analyze::LintError(std::move(outcome.diagnostics));
  }

  // The static-redundancy census: count the universe classes the
  // implication engine proves untestable. A proof about any site of a
  // class covers the whole class — collapsing only merges faults no test
  // distinguishes. For a transition universe the proof transfers through
  // the capture half: the Fault record IS the matching capture stuck-at,
  // and a redundant capture objective makes the transition fault
  // untestable (tpg::generate_transition_test's kCapture proof).
  if (options.untestable != analyze::Policy::kOff) {
    const circuit::CompiledCircuit compiled(faults.circuit());
    const analyze::ImplicationEngine engine(compiled);
    const analyze::RedundancyReport redundancy =
        analyze::identify_redundancies(engine);
    std::vector<char> hit(faults.class_count(), 0);
    for (const analyze::RedundantSite& site : redundancy.sites) {
      const std::size_t index = faults.index_of(site.fault);
      if (index >= faults.fault_count()) continue;  // not in this universe
      hit[faults.class_of(index)] = 1;
    }
    for (std::size_t c = 0; c < faults.class_count(); ++c) {
      if (hit[c] == 0) continue;
      ++outcome.statically_redundant_classes;
      outcome.statically_redundant_faults += faults.class_size(c);
    }
  }
  return outcome;
}

sim::PatternSet make_patterns(const fault::FaultList& faults,
                              const PatternSourceSpec& source,
                              std::optional<tpg::AtpgResult>* atpg_out) {
  LSIQ_FAILPOINT("flow.patterns");
  const std::size_t inputs = faults.circuit().pattern_inputs().size();
  if (source.kind == "lfsr") {
    return tpg::lfsr_patterns(inputs, source.pattern_count, source.lfsr_seed,
                              source.lfsr_width);
  }
  if (source.kind == "atpg") {
    tpg::AtpgResult generated = tpg::generate_tests(faults, source.atpg);
    sim::PatternSet patterns =
        source.atpg_compact
            ? tpg::reverse_order_compact(faults, generated.patterns)
            : generated.patterns;
    if (atpg_out != nullptr) *atpg_out = std::move(generated);
    return patterns;
  }
  if (source.kind == "explicit") {
    LSIQ_EXPECT(source.patterns.has_value(),
                "flow: explicit source has no pattern set");
    LSIQ_EXPECT(source.patterns->input_count() == inputs,
                "flow: explicit pattern set input count does not match the "
                "circuit");
    return *source.patterns;
  }
  if (source.kind == "file") {
    sim::PatternSet patterns = sim::read_patterns_file(source.file);
    LSIQ_EXPECT(patterns.input_count() == inputs,
                "flow: pattern file input count does not match the circuit");
    return patterns;
  }
  throw Error("flow: unknown pattern source '" + source.kind + "'",
              ErrorCode::kInvalidSpec);
}

FlowResult run(const fault::FaultList& faults, const FlowSpec& spec,
               std::shared_ptr<const circuit::CompiledCircuit> compiled) {
  LSIQ_FAILPOINT("flow.run");
  validate_or_throw(spec);
  // validate() guaranteed the name resolves; the list must agree with the
  // spec or every downstream figure silently reports the wrong model.
  const fault_model::FaultModel model =
      *fault_model::fault_model_from_name(spec.fault_model.kind);
  LSIQ_EXPECT(faults.model() == model,
              "flow: the fault list's model does not match spec.fault_model "
              "(build the universe with fault_model::universe, or use the "
              "circuit overload)");

  FlowResult result;
  result.spec.fault_model = spec.fault_model;
  result.spec.source = strip_pattern_payload(spec.source);
  result.spec.observe = spec.observe;
  result.spec.engine = spec.engine;
  result.spec.lot = spec.lot;
  result.spec.analysis = spec.analysis;
  result.spec.analyze = spec.analyze;

  // 0. The pre-run analyze gate: lint the netlist before any engine
  // spends time on it. An error-policy finding throws LintError here;
  // warnings and the static-redundancy census ride along on the result.
  CheckOutcome gate = check_detailed(faults, spec);
  result.lint = std::move(gate.diagnostics);
  result.statically_redundant_classes = gate.statically_redundant_classes;
  result.statically_redundant_faults = gate.statically_redundant_faults;

  // 1. Materialize the ordered pattern program.
  result.patterns = make_patterns(faults, spec.source, &result.atpg);
  LSIQ_EXPECT(!result.patterns.empty(),
              "flow: the pattern source produced no patterns");
  if (model == fault_model::FaultModel::kTransition &&
      result.patterns.size() < 2) {
    // validate() catches this for lfsr/explicit sources; a file source's
    // length is only known after reading it, an atpg source's only after
    // generation. An EMPTY program (e.g. an all-redundant universe) is
    // caught by the non-empty check above, so this branch sees exactly 1.
    throw Error(
        "flow: transition grading needs at least 2 patterns (one "
        "launch/capture pair); the source produced 1",
        ErrorCode::kInvalidSpec);
  }
  const std::size_t pattern_count = result.patterns.size();

  // 2. Grade it under the requested observation with the requested engine
  // (the LAMP step of Section 7).
  LSIQ_FAILPOINT("flow.grade");
  if (spec.observe.kind == "misr") {
    bist::BistConfig config;
    config.misr_width = spec.observe.misr_width;
    config.misr_taps = spec.observe.misr_taps;
    config.num_threads = misr_worker_count(spec.engine);
    config.compiled = compiled;
    const bist::BistSession session(faults, result.patterns, config);
    result.bist = session.run();
    result.curve = result.bist->signature_curve(faults);
  } else {
    std::optional<fault::StrobeSchedule> schedule;
    if (spec.observe.kind == "progressive") {
      schedule = fault::StrobeSchedule::progressive(
          faults.circuit().observed_points().size(), spec.observe.strobe_step);
    }
    const fault::StrobeSchedule* strobes =
        schedule.has_value() ? &*schedule : nullptr;
    if (spec.engine.kind == "serial") {
      // The reference engine deliberately stays on the uncompiled Circuit
      // (it is the oracle the compiled engines are checked against), so
      // the shared view is not used here.
      result.fault_sim = fault::simulate_serial(faults, result.patterns,
                                                strobes);
    } else if (spec.engine.kind == "ppsfp") {
      result.fault_sim = fault::simulate_ppsfp(faults, result.patterns,
                                               strobes, compiled,
                                               spec.engine.grade_width);
    } else if (spec.engine.kind == "sharded") {
      fault::ShardedOptions options;
      options.shards = spec.engine.shards;
      options.width = spec.engine.grade_width;
      options.num_threads = spec.engine.num_threads;
      result.fault_sim = fault::simulate_sharded(faults, result.patterns,
                                                 strobes, options, compiled);
    } else {
      result.fault_sim = fault::simulate_ppsfp_mt(faults, result.patterns,
                                                  strobes,
                                                  spec.engine.num_threads,
                                                  compiled,
                                                  spec.engine.grade_width);
    }
    result.curve = result.fault_sim->curve(faults, pattern_count);
  }

  // 3. Manufacture and test the virtual lot (the Sentry step).
  const bool has_lot =
      spec.lot.chip_count > 0 || spec.lot.physical.has_value();
  if (has_lot) {
    if (spec.lot.physical.has_value()) {
      result.lot = wafer::generate_physical_lot(faults, *spec.lot.physical);
    } else {
      const quality::FaultDistribution distribution(spec.lot.yield,
                                                    spec.lot.n0);
      result.lot = wafer::generate_lot(faults, distribution,
                                       spec.lot.chip_count, spec.lot.seed);
    }
    if (spec.observe.kind == "misr") {
      result.test = wafer::test_lot_bist(*result.lot, *result.bist);
    } else {
      result.test = wafer::test_lot(*result.lot, *result.fault_sim,
                                    pattern_count);
    }

    // 4. Read out at the strobes (Table 1).
    for (const double target : spec.analysis.strobe_coverages) {
      if (!result.curve->reaches(target)) {
        // A strobe the program cannot reach is a property of the
        // (spec, circuit) pair, not of the moment: classified permanent.
        throw Error("flow: pattern set never reaches coverage " +
                        std::to_string(target) + " (final coverage " +
                        std::to_string(result.curve->final_coverage()) + ")",
                    ErrorCode::kInvalidSpec);
      }
      const std::size_t t = result.curve->patterns_for_coverage(target);
      wafer::StrobeRow row;
      row.target_coverage = target;
      row.actual_coverage = result.curve->coverage_after(t);
      row.pattern_index = t;
      row.cumulative_failed = result.test->failed_within(t);
      row.cumulative_fraction = result.test->fraction_failed_within(t);
      result.table.push_back(row);
    }
  }

  // 5. Characterize (Section 5). validate() guaranteed the name resolves.
  const quality::CharacterizationMethod method =
      *quality::characterization_method_from_name(spec.analysis.method);
  if (method == quality::CharacterizationMethod::kGiven) {
    result.analyzer = quality::QualityAnalyzer(spec.lot.yield, spec.lot.n0);
  } else {
    result.analyzer = quality::QualityAnalyzer::from_lot_data(
        result.points(), spec.lot.yield, method);
  }

  return result;
}

FlowResult run(const circuit::Circuit& circuit, const FlowSpec& spec) {
  // Validate before enumerating anything so a bad fault_model name is an
  // InvalidSpec, not an internal error while picking the universe.
  validate_or_throw(spec);
  const fault::FaultList faults = fault_model::universe(
      circuit, *fault_model::fault_model_from_name(spec.fault_model.kind));
  return run(faults, spec);
}

std::string FlowResult::report() const {
  std::ostringstream out;
  // Every row of this report is per fault model: the same product under
  // stuck_at and transition specs yields directly comparable tables.
  const auto model = fault_model::fault_model_from_name(spec.fault_model.kind);
  const std::string model_label = model.has_value()
                                      ? fault_model::fault_model_label(*model)
                                      : spec.fault_model.kind;
  out << "flow: model=" << spec.fault_model.kind
      << " source=" << spec.source.kind
      << " observe=" << spec.observe.kind << " engine=" << spec.engine.kind;
  if (spec.engine.kind == "ppsfp_mt") {
    out << " (" << util::resolve_worker_count(spec.engine.num_threads)
        << " workers)";
  } else if (spec.engine.kind == "sharded") {
    const std::size_t shards = spec.engine.shards != 0
                                   ? spec.engine.shards
                                   : util::resolve_worker_count(0);
    out << " (" << shards << " shards)";
  }
  if (spec.engine.grade_width != 1) {
    out << " width=" << spec.engine.grade_width;
  }
  out << "\n  program: " << patterns.size() << " patterns over "
      << patterns.input_count() << " inputs";
  if (atpg.has_value()) {
    out << " (ATPG: " << atpg->redundant_classes << " redundant";
    if (atpg->untestable_launch_classes + atpg->untestable_capture_classes >
        0) {
      // Transition runs split the redundancy proof by which half of the
      // two-pattern test is impossible.
      out << " [" << atpg->untestable_launch_classes << " launch, "
          << atpg->untestable_capture_classes << " capture]";
    }
    out << ", " << atpg->aborted_classes << " aborted classes)";
  }
  out << "\n  final " << model_label << " coverage f = "
      << util::format_percent(final_coverage(), 2) << "\n";
  if (statically_redundant_faults > 0) {
    out << "  statically redundant: " << statically_redundant_faults
        << " universe fault" << (statically_redundant_faults == 1 ? "" : "s")
        << " in " << statically_redundant_classes << " class"
        << (statically_redundant_classes == 1 ? "" : "es")
        << " proven untestable by the implication engine (removable from "
           "the coverage/DPPM denominator)\n";
  }
  if (!lint.empty()) {
    out << "  lint: " << lint.size() << " warning"
        << (lint.size() == 1 ? "" : "s") << " from the analyze gate\n";
    for (const analyze::Diagnostic& diagnostic : lint) {
      out << "    " << diagnostic.text() << "\n";
    }
  }
  if (bist.has_value()) {
    out << "  misr k=" << bist->misr_width << ": full-observation coverage "
        << util::format_percent(bist->raw_coverage, 2)
        << ", signature coverage "
        << util::format_percent(bist->signature_coverage, 2) << " ("
        << bist->aliased_classes.size() << " aliased classes)\n";
  }

  if (lot.has_value() && test.has_value()) {
    out << "  lot: " << lot->size() << " chips, realized yield "
        << util::format_percent(lot->realized_yield(), 1) << ", realized n0 "
        << util::format_double(lot->realized_n0(), 2) << "\n  tester: "
        << test->failed_count() << " failed, " << test->passed_count()
        << " shipped, " << test->shipped_defective_count()
        << " defective escapes\n";
  }

  if (!table.empty()) {
    out << "\nStrobe readout (Table 1 columns, " << model_label
        << " faults):\n";
    util::TextTable strobe_table({"coverage", "patterns", "failed",
                                  "fraction"});
    for (const wafer::StrobeRow& row : table) {
      strobe_table.add_row({util::format_percent(row.actual_coverage, 1),
                            std::to_string(row.pattern_index),
                            std::to_string(row.cumulative_failed),
                            util::format_double(row.cumulative_fraction, 3)});
    }
    out << strobe_table.to_string();
  }

  if (analyzer.has_value()) {
    out << "\n" << analyzer->report(spec.analysis.reject_targets);
    const double f = bist.has_value() ? bist->signature_coverage
                                      : final_coverage();
    out << "\nAt the program's delivered " << model_label << " coverage ("
        << util::format_percent(f, 2) << "): reject rate "
        << util::format_probability(analyzer->reject_rate(f)) << " = "
        << util::format_double(analyzer->dppm(f), 0) << " DPPM\n";
  }
  return out.str();
}

}  // namespace lsiq::flow
