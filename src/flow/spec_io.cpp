#include "flow/spec_io.hpp"

#include <cctype>
#include <fstream>
#include <istream>
#include <map>
#include <sstream>

#include "circuit/bench_io.hpp"
#include "circuit/generators.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace lsiq::flow {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw ParseError("spec line " + std::to_string(line) + ": " + message);
}

std::string trim(const std::string& text) {
  std::size_t first = 0;
  std::size_t last = text.size();
  while (first < last && std::isspace(static_cast<unsigned char>(
                             text[first])) != 0) {
    ++first;
  }
  while (last > first && std::isspace(static_cast<unsigned char>(
                             text[last - 1])) != 0) {
    --last;
  }
  return text.substr(first, last - first);
}

std::uint64_t parse_unsigned(const std::string& value, std::size_t line,
                             const std::string& key) {
  try {
    // std::stoull wraps a leading minus sign instead of rejecting it;
    // "-1" must be a diagnostic, not 2^64 - 1.
    if (value.empty() || value[0] == '-' || value[0] == '+') {
      throw std::invalid_argument(value);
    }
    std::size_t consumed = 0;
    const std::uint64_t parsed = std::stoull(value, &consumed, 0);
    if (consumed != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    fail(line, "key '" + key + "' needs an unsigned integer, got '" + value +
                   "'");
  }
}

double parse_double(const std::string& value, std::size_t line,
                    const std::string& key) {
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(value, &consumed);
    if (consumed != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    fail(line, "key '" + key + "' needs a number, got '" + value + "'");
  }
}

bool parse_bool(const std::string& value, std::size_t line,
                const std::string& key) {
  if (value == "1" || value == "true" || value == "on") return true;
  if (value == "0" || value == "false" || value == "off") return false;
  fail(line, "key '" + key + "' needs a boolean (0/1/true/false), got '" +
                 value + "'");
}

/// Space- and/or comma-separated list of doubles.
std::vector<double> parse_double_list(const std::string& value,
                                      std::size_t line,
                                      const std::string& key) {
  std::string normalized = value;
  for (char& c : normalized) {
    if (c == ',') c = ' ';
  }
  std::istringstream in(normalized);
  std::vector<double> values;
  std::string token;
  while (in >> token) {
    values.push_back(parse_double(token, line, key));
  }
  if (values.empty()) {
    fail(line, "key '" + key + "' needs at least one number");
  }
  return values;
}

void apply_key(SpecFile& file, const std::string& key,
               const std::string& value, std::size_t line) {
  FlowSpec& spec = file.spec;
  if (key == "circuit") {
    file.circuit = value;
  } else if (key == "fault_model") {
    spec.fault_model.kind = value;
  } else if (key == "source") {
    spec.source.kind = value;
  } else if (key == "patterns") {
    spec.source.pattern_count =
        static_cast<std::size_t>(parse_unsigned(value, line, key));
  } else if (key == "lfsr_width") {
    spec.source.lfsr_width =
        static_cast<int>(parse_unsigned(value, line, key));
  } else if (key == "lfsr_seed") {
    spec.source.lfsr_seed = parse_unsigned(value, line, key);
  } else if (key == "atpg_random") {
    spec.source.atpg.random_patterns =
        static_cast<std::size_t>(parse_unsigned(value, line, key));
  } else if (key == "atpg_seed") {
    spec.source.atpg.seed = parse_unsigned(value, line, key);
  } else if (key == "atpg_compact") {
    spec.source.atpg_compact = parse_bool(value, line, key);
  } else if (key == "atpg_implications") {
    spec.source.atpg.podem.use_implications = parse_bool(value, line, key);
  } else if (key == "pattern_file") {
    spec.source.file = value;
  } else if (key == "observe") {
    spec.observe.kind = value;
  } else if (key == "strobe_step") {
    spec.observe.strobe_step =
        static_cast<std::size_t>(parse_unsigned(value, line, key));
  } else if (key == "misr_width") {
    spec.observe.misr_width =
        static_cast<int>(parse_unsigned(value, line, key));
  } else if (key == "misr_taps") {
    spec.observe.misr_taps = parse_unsigned(value, line, key);
  } else if (key == "engine") {
    spec.engine.kind = value;
  } else if (key == "threads") {
    spec.engine.num_threads =
        static_cast<std::size_t>(parse_unsigned(value, line, key));
  } else if (key == "grade_width") {
    spec.engine.grade_width =
        static_cast<std::size_t>(parse_unsigned(value, line, key));
  } else if (key == "shards") {
    spec.engine.shards =
        static_cast<std::size_t>(parse_unsigned(value, line, key));
  } else if (key == "chips") {
    spec.lot.chip_count =
        static_cast<std::size_t>(parse_unsigned(value, line, key));
  } else if (key == "yield") {
    spec.lot.yield = parse_double(value, line, key);
  } else if (key == "n0") {
    spec.lot.n0 = parse_double(value, line, key);
  } else if (key == "lot_seed") {
    spec.lot.seed = parse_unsigned(value, line, key);
  } else if (key == "strobes") {
    spec.analysis.strobe_coverages = parse_double_list(value, line, key);
  } else if (key == "method") {
    spec.analysis.method = value;
  } else if (key == "targets") {
    spec.analysis.reject_targets = parse_double_list(value, line, key);
  } else if (key == "analyze_structure") {
    spec.analyze.structure = value;
  } else if (key == "analyze_dead_logic") {
    spec.analyze.dead_logic = value;
  } else if (key == "analyze_untestable") {
    spec.analyze.untestable = value;
  } else if (key == "analyze_testability") {
    spec.analyze.testability = value;
  } else if (key == "resistant_threshold") {
    spec.analyze.resistant_threshold = parse_double(value, line, key);
  } else {
    fail(line, "unknown key '" + key + "'");
  }
}

}  // namespace

SpecFile read_spec(std::istream& in) {
  LSIQ_FAILPOINT("spec.read");
  SpecFile file;
  std::string raw;
  std::size_t line_number = 0;
  // First line each key was set on: a key given twice is almost always a
  // botched copy-paste sweep edit, and silently letting the last value
  // win turns that into a wrong experiment instead of a diagnostic.
  std::map<std::string, std::size_t> first_seen;
  while (std::getline(in, raw)) {
    ++line_number;
    const std::size_t comment = raw.find('#');
    if (comment != std::string::npos) raw.erase(comment);
    const std::string text = trim(raw);
    if (text.empty()) continue;
    const std::size_t equals = text.find('=');
    if (equals == std::string::npos) {
      fail(line_number, "expected 'key = value', got '" + text + "'");
    }
    const std::string key = trim(text.substr(0, equals));
    const std::string value = trim(text.substr(equals + 1));
    if (key.empty()) fail(line_number, "missing key before '='");
    if (value.empty()) {
      fail(line_number, "missing value for key '" + key + "'");
    }
    const auto [it, inserted] = first_seen.emplace(key, line_number);
    if (!inserted) {
      fail(line_number, "duplicate key '" + key + "' (first set on line " +
                            std::to_string(it->second) + ")");
    }
    apply_key(file, key, value, line_number);
  }
  if (first_seen.empty()) {
    // A spec with zero keys is a truncated or wrong file, not a request
    // for the all-defaults experiment.
    throw ParseError("spec: no 'key = value' lines (empty spec file)");
  }
  return file;
}

SpecFile read_spec_string(const std::string& text) {
  std::istringstream in(text);
  return read_spec(in);
}

SpecFile read_spec_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw IoError("cannot open spec file: " + path);
  }
  return read_spec(in);
}

std::string write_spec_string(const SpecFile& file) {
  const FlowSpec& spec = file.spec;
  if (spec.source.kind == "explicit") {
    throw Error(
        "write_spec_string: an explicit pattern-set source has no text "
        "form; write the patterns with sim::write_patterns_file and use a "
        "file source");
  }
  std::ostringstream out;
  if (!file.circuit.empty()) out << "circuit = " << file.circuit << "\n";
  out << "fault_model = " << spec.fault_model.kind << "\n"
      << "source = " << spec.source.kind << "\n";
  if (spec.source.kind == "lfsr") {
    out << "patterns = " << spec.source.pattern_count << "\n"
        << "lfsr_width = " << spec.source.lfsr_width << "\n"
        << "lfsr_seed = " << spec.source.lfsr_seed << "\n";
  } else if (spec.source.kind == "atpg") {
    out << "atpg_random = " << spec.source.atpg.random_patterns << "\n"
        << "atpg_seed = " << spec.source.atpg.seed << "\n"
        << "atpg_compact = " << (spec.source.atpg_compact ? 1 : 0) << "\n";
    // Non-default only, so pre-existing spec files round-trip unchanged.
    if (!spec.source.atpg.podem.use_implications) {
      out << "atpg_implications = 0\n";
    }
  } else if (spec.source.kind == "file") {
    out << "pattern_file = " << spec.source.file << "\n";
  }
  out << "observe = " << spec.observe.kind << "\n";
  if (spec.observe.kind == "progressive") {
    out << "strobe_step = " << spec.observe.strobe_step << "\n";
  } else if (spec.observe.kind == "misr") {
    out << "misr_width = " << spec.observe.misr_width << "\n";
    if (spec.observe.misr_taps != 0) {
      out << "misr_taps = " << spec.observe.misr_taps << "\n";
    }
  }
  out << "engine = " << spec.engine.kind << "\n";
  if (spec.engine.kind == "ppsfp_mt" || spec.engine.kind == "sharded") {
    out << "threads = " << spec.engine.num_threads << "\n";
  }
  // Non-default only, so pre-existing spec files round-trip unchanged.
  if (spec.engine.grade_width != 1) {
    out << "grade_width = " << spec.engine.grade_width << "\n";
  }
  if (spec.engine.shards != 0) {
    out << "shards = " << spec.engine.shards << "\n";
  }
  out << "chips = " << spec.lot.chip_count << "\n"
      << "yield = " << spec.lot.yield << "\n"
      << "n0 = " << spec.lot.n0 << "\n"
      << "lot_seed = " << spec.lot.seed << "\n";
  const auto list = [&out](const char* key, const std::vector<double>& xs) {
    if (xs.empty()) return;
    out << key << " =";
    for (const double x : xs) out << " " << x;
    out << "\n";
  };
  list("strobes", spec.analysis.strobe_coverages);
  out << "method = " << spec.analysis.method << "\n";
  list("targets", spec.analysis.reject_targets);
  // The analyze gate: only non-default knobs are serialized, so specs
  // written before the gate existed round-trip byte-identically.
  const AnalyzeSpec defaults;
  if (spec.analyze.structure != defaults.structure) {
    out << "analyze_structure = " << spec.analyze.structure << "\n";
  }
  if (spec.analyze.dead_logic != defaults.dead_logic) {
    out << "analyze_dead_logic = " << spec.analyze.dead_logic << "\n";
  }
  if (spec.analyze.untestable != defaults.untestable) {
    out << "analyze_untestable = " << spec.analyze.untestable << "\n";
  }
  if (spec.analyze.testability != defaults.testability) {
    out << "analyze_testability = " << spec.analyze.testability << "\n";
  }
  if (spec.analyze.resistant_threshold != defaults.resistant_threshold) {
    out << "resistant_threshold = " << spec.analyze.resistant_threshold
        << "\n";
  }
  return out.str();
}

circuit::Circuit circuit_from_name(const std::string& name) {
  if (name == "c17") return circuit::make_c17();
  if (name.size() > 6 && name.substr(name.size() - 6) == ".bench") {
    return circuit::read_bench_file(name);
  }

  // "<family><N>" selectors.
  std::size_t digits = name.size();
  while (digits > 0 &&
         std::isdigit(static_cast<unsigned char>(name[digits - 1])) != 0) {
    --digits;
  }
  const std::string family = name.substr(0, digits);
  const std::string suffix = name.substr(digits);
  // Absurdly long suffixes overflow std::stoul (std::out_of_range); treat
  // them as unknown selectors, not as a crash.
  if (!family.empty() && !suffix.empty() && suffix.size() <= 4) {
    const int n = static_cast<int>(std::stoul(suffix));
    if (family == "mult") return circuit::make_array_multiplier(n);
    if (family == "adder") return circuit::make_ripple_carry_adder(n);
    if (family == "alu") return circuit::make_alu(n);
    if (family == "comparator") return circuit::make_comparator(n);
    if (family == "decoder") return circuit::make_decoder(n);
    if (family == "parity") return circuit::make_parity_tree(n);
    if (family == "majority") return circuit::make_majority(n);
    if (family == "mux") return circuit::make_mux_tree(n);
    if (family == "barrel") return circuit::make_barrel_rotator(n);
  }
  throw Error("unknown circuit '" + name +
                  "' (expected c17, mult<N>, adder<N>, alu<N>, "
                  "comparator<N>, decoder<N>, parity<N>, majority<N>, "
                  "mux<N>, barrel<N>, or a .bench path)",
              ErrorCode::kInvalidSpec);
}

}  // namespace lsiq::flow
