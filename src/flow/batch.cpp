#include "flow/batch.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "fault_model/universe.hpp"
#include "flow/flow.hpp"
#include "flow/spec_io.hpp"
#include "util/deadline.hpp"
#include "util/failpoint.hpp"
#include "util/thread_pool.hpp"

namespace lsiq::flow {

namespace {

// ---- spec-content hashing (checkpoint staleness detection) ----

/// FNV-1a over the file's bytes; 0 when the file cannot be read (a record
/// hashed 0 is never treated as resumable).
std::uint64_t hash_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 0;
  std::uint64_t hash = 14695981039346656037ULL;
  char buffer[4096];
  while (in.read(buffer, sizeof buffer) || in.gcount() > 0) {
    const std::streamsize got = in.gcount();
    for (std::streamsize i = 0; i < got; ++i) {
      hash ^= static_cast<unsigned char>(buffer[i]);
      hash *= 1099511628211ULL;
    }
    if (!in) break;
  }
  return hash;
}

// ---- minimal JSON (the result-store wire format) ----
//
// Records are flat objects of strings, numbers and booleans; a
// hand-rolled writer/reader keeps the library dependency-free and the
// format under this file's control.

void append_json_string(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char escaped[8];
          std::snprintf(escaped, sizeof escaped, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += escaped;
        } else {
          out += c;  // UTF-8 payload bytes pass through untouched
        }
    }
  }
  out += '"';
}

/// Round-trippable double text (%.17g): format(parse(format(x))) ==
/// format(x), which is what keeps a record byte-stable across a
/// checkpoint parse/reserialize cycle.
std::string format_double(double value) {
  char text[64];
  std::snprintf(text, sizeof text, "%.17g", value);
  return text;
}

std::string format_hash(std::uint64_t hash) {
  char text[32];
  std::snprintf(text, sizeof text, "0x%016llx",
                static_cast<unsigned long long>(hash));
  return text;
}

struct JsonValue {
  enum class Kind { kString, kNumber, kBool };
  Kind kind = Kind::kString;
  std::string text;      // kString: unescaped payload; kNumber: raw text
  double number = 0.0;
  bool boolean = false;
};

/// Parse one flat JSON object of string/number/bool values. Returns false
/// on any malformation — resume treats such a line as torn and skips it.
bool parse_flat_object(const std::string& line,
                       std::map<std::string, JsonValue>* out) {
  std::size_t i = 0;
  const auto skip_space = [&] {
    while (i < line.size() &&
           (line[i] == ' ' || line[i] == '\t' || line[i] == '\r')) {
      ++i;
    }
  };
  const auto parse_string = [&](std::string* text) -> bool {
    if (i >= line.size() || line[i] != '"') return false;
    ++i;
    text->clear();
    while (i < line.size() && line[i] != '"') {
      char c = line[i++];
      if (c != '\\') {
        *text += c;
        continue;
      }
      if (i >= line.size()) return false;
      const char escape = line[i++];
      switch (escape) {
        case '"': *text += '"'; break;
        case '\\': *text += '\\'; break;
        case '/': *text += '/'; break;
        case 'n': *text += '\n'; break;
        case 'r': *text += '\r'; break;
        case 't': *text += '\t'; break;
        case 'b': *text += '\b'; break;
        case 'f': *text += '\f'; break;
        case 'u': {
          if (i + 4 > line.size()) return false;
          unsigned value = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = line[i++];
            value <<= 4;
            if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') value |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') value |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          if (value > 0xff) return false;  // the writer only escapes bytes
          *text += static_cast<char>(value);
          break;
        }
        default: return false;
      }
    }
    if (i >= line.size()) return false;
    ++i;  // closing quote
    return true;
  };

  skip_space();
  if (i >= line.size() || line[i] != '{') return false;
  ++i;
  skip_space();
  if (i < line.size() && line[i] == '}') return true;
  while (true) {
    skip_space();
    std::string key;
    if (!parse_string(&key)) return false;
    skip_space();
    if (i >= line.size() || line[i] != ':') return false;
    ++i;
    skip_space();
    JsonValue value;
    if (i < line.size() && line[i] == '"') {
      value.kind = JsonValue::Kind::kString;
      if (!parse_string(&value.text)) return false;
    } else if (line.compare(i, 4, "true") == 0) {
      value.kind = JsonValue::Kind::kBool;
      value.boolean = true;
      i += 4;
    } else if (line.compare(i, 5, "false") == 0) {
      value.kind = JsonValue::Kind::kBool;
      value.boolean = false;
      i += 5;
    } else {
      const std::size_t start = i;
      while (i < line.size() && line[i] != ',' && line[i] != '}' &&
             line[i] != ' ') {
        ++i;
      }
      value.kind = JsonValue::Kind::kNumber;
      value.text = line.substr(start, i - start);
      try {
        std::size_t consumed = 0;
        value.number = std::stod(value.text, &consumed);
        if (consumed != value.text.size()) return false;
      } catch (const std::exception&) {
        return false;
      }
    }
    (*out)[key] = std::move(value);
    skip_space();
    if (i >= line.size()) return false;
    if (line[i] == ',') {
      ++i;
      continue;
    }
    if (line[i] == '}') return true;
    return false;
  }
}

const JsonValue* find_value(const std::map<std::string, JsonValue>& values,
                            const std::string& key, JsonValue::Kind kind) {
  const auto it = values.find(key);
  if (it == values.end() || it->second.kind != kind) return nullptr;
  return &it->second;
}

/// Bound a failure message: long enough for every real diagnostic in the
/// library, short enough that one pathological what() cannot bloat the
/// store.
std::string sanitize_message(const std::string& message) {
  constexpr std::size_t kMaxLength = 2000;
  if (message.size() <= kMaxLength) return message;
  return message.substr(0, kMaxLength) + "...";
}

void append_record_fields(std::string& out, const BatchRecord& record,
                          bool canonical) {
  out += "{\"spec\":";
  append_json_string(out, record.spec);
  out += ",\"hash\":";
  append_json_string(out, format_hash(record.hash));
  out += ",\"status\":";
  append_json_string(out, record.status);
  out += ",\"error_code\":";
  append_json_string(out, error_code_name(record.error_code));
  out += ",\"transient\":";
  out += record.transient ? "true" : "false";
  out += ",\"attempts\":" + std::to_string(record.attempts);
  if (!canonical) {
    out += ",\"wall_ms\":" + format_double(record.wall_ms);
    out += ",\"resumed\":";
    out += record.resumed ? "true" : "false";
  }
  out += ",\"patterns\":" + std::to_string(record.patterns);
  out += ",\"classes\":" + std::to_string(record.classes);
  out += ",\"coverage\":" + format_double(record.coverage);
  out += ",\"dppm\":" + format_double(record.dppm);
  out += ",\"error\":";
  append_json_string(out, record.error);
  out += "}";
}

// ---- the JSONL result store / checkpoint ----

class ResultStore {
 public:
  ResultStore(const std::string& path, std::ostream* stream)
      : path_(path), stream_(stream) {
    if (!path.empty()) {
      file_.emplace(path, std::ios::trunc);
      if (!*file_) {
        throw IoError("cannot open result store for writing: " + path);
      }
    }
  }

  /// Commit one record: append + flush (the flush is the checkpoint
  /// durability point). A checkpoint write failure aborts the batch —
  /// a result store that drops records is worse than no store.
  void append(const BatchRecord& record) {
    const std::string line = record.to_jsonl();
    const std::lock_guard<std::mutex> lock(mutex_);
    if (file_.has_value()) {
      *file_ << line << '\n' << std::flush;
      if (!*file_) {
        throw IoError("result store write failed: " + path_);
      }
    }
    if (stream_ != nullptr) {
      *stream_ << line << '\n' << std::flush;
    }
  }

 private:
  std::string path_;
  std::ostream* stream_;
  std::optional<std::ofstream> file_;
  std::mutex mutex_;
};

/// Last record per spec from an existing checkpoint; unparsable (torn)
/// lines are skipped, so a store killed mid-write still resumes.
std::map<std::string, BatchRecord> load_checkpoint(const std::string& path) {
  std::map<std::string, BatchRecord> records;
  std::ifstream in(path);
  if (!in) return records;  // first run: nothing to resume
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::optional<BatchRecord> record = BatchRecord::from_jsonl(line);
    if (record.has_value()) records[record->spec] = std::move(*record);
  }
  return records;
}

// ---- running one spec ----

/// One attempt, start to finish, inside the caller's catch boundary.
/// Fills the ok-summary fields only when the whole flow succeeded.
void run_spec_once(const std::string& path, ArtifactCache& cache,
                   const BatchOptions& options, BatchRecord* record) {
  std::optional<util::DeadlineScope> watchdog;
  if (options.deadline_ms > 0) {
    watchdog.emplace(std::chrono::milliseconds(options.deadline_ms));
  }
  const SpecFile file = read_spec_file(path);
  if (file.circuit.empty()) {
    throw Error("spec file names no circuit", ErrorCode::kInvalidSpec);
  }
  validate_or_throw(file.spec);
  // validate() guaranteed the model name resolves.
  const fault_model::FaultModel model =
      *fault_model::fault_model_from_name(file.spec.fault_model.kind);
  const ArtifactCache::Artifacts& artifacts = cache.get(file.circuit, model);
  if (options.check_only) {
    // Lint-before-run: the analyze gate only. A LintError escapes to the
    // retry boundary and becomes a permanent "lint" failure record.
    check(*artifacts.faults, file.spec);
    record->classes = artifacts.faults->class_count();
    return;
  }
  const FlowResult result = run(*artifacts.faults, file.spec,
                                artifacts.compiled);

  record->patterns = result.patterns.size();
  record->classes = artifacts.faults->class_count();
  record->coverage =
      result.curve.has_value() ? result.curve->final_coverage() : 0.0;
  const double delivered = result.bist.has_value()
                               ? result.bist->signature_coverage
                               : record->coverage;
  record->dppm =
      result.analyzer.has_value() ? result.analyzer->dppm(delivered) : 0.0;
}

/// The crash-isolation + retry boundary around one spec. Never throws:
/// every failure becomes a structured record.
BatchRecord run_one_spec(const std::string& path, ArtifactCache& cache,
                         const BatchOptions& options) {
  BatchRecord record;
  record.spec = path;
  record.hash = hash_file(path);
  const auto start = std::chrono::steady_clock::now();
  int attempt = 0;
  while (true) {
    ++attempt;
    ErrorCode code = ErrorCode::kOk;
    std::string message;
    try {
      run_spec_once(path, cache, options, &record);
    } catch (const Error& e) {
      code = e.code();
      message = e.what();
    } catch (const std::exception& e) {
      code = ErrorCode::kUnknown;
      message = e.what();
    } catch (...) {
      code = ErrorCode::kUnknown;
      message = "non-standard exception";
    }
    if (code == ErrorCode::kOk) {
      record.status = "ok";
      record.error_code = ErrorCode::kOk;
      record.transient = false;
      record.error.clear();
      break;
    }
    record.status = "failed";
    record.error_code = code;
    record.transient = is_transient(code);
    record.error = sanitize_message(message);
    if (record.transient && attempt < options.retry.max_attempts) {
      const int delay_ms = options.retry.backoff_ms(attempt);
      if (delay_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      }
      continue;
    }
    break;
  }
  record.attempts = attempt;
  record.wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  return record;
}

}  // namespace

// ---- RetryPolicy ----

int RetryPolicy::backoff_ms(int attempt) const {
  if (backoff_initial_ms <= 0) return 0;
  double delay = backoff_initial_ms;
  for (int k = 1; k < attempt; ++k) {
    delay *= backoff_multiplier;
    if (delay >= backoff_max_ms) break;
  }
  return static_cast<int>(std::min<double>(delay, backoff_max_ms));
}

// ---- BatchRecord ----

std::string BatchRecord::to_jsonl() const {
  std::string out;
  append_record_fields(out, *this, /*canonical=*/false);
  return out;
}

std::string BatchRecord::canonical_jsonl() const {
  std::string out;
  append_record_fields(out, *this, /*canonical=*/true);
  return out;
}

std::optional<BatchRecord> BatchRecord::from_jsonl(const std::string& line) {
  std::map<std::string, JsonValue> values;
  if (!parse_flat_object(line, &values)) return std::nullopt;

  using Kind = JsonValue::Kind;
  const JsonValue* spec = find_value(values, "spec", Kind::kString);
  const JsonValue* hash = find_value(values, "hash", Kind::kString);
  const JsonValue* status = find_value(values, "status", Kind::kString);
  const JsonValue* code = find_value(values, "error_code", Kind::kString);
  const JsonValue* transient = find_value(values, "transient", Kind::kBool);
  const JsonValue* attempts = find_value(values, "attempts", Kind::kNumber);
  const JsonValue* wall_ms = find_value(values, "wall_ms", Kind::kNumber);
  const JsonValue* patterns = find_value(values, "patterns", Kind::kNumber);
  const JsonValue* classes = find_value(values, "classes", Kind::kNumber);
  const JsonValue* coverage = find_value(values, "coverage", Kind::kNumber);
  const JsonValue* dppm = find_value(values, "dppm", Kind::kNumber);
  const JsonValue* error = find_value(values, "error", Kind::kString);
  if (spec == nullptr || hash == nullptr || status == nullptr ||
      code == nullptr || transient == nullptr || attempts == nullptr ||
      patterns == nullptr || classes == nullptr || coverage == nullptr ||
      dppm == nullptr || error == nullptr) {
    return std::nullopt;
  }
  if (status->text != "ok" && status->text != "failed") return std::nullopt;
  const std::optional<ErrorCode> parsed_code =
      error_code_from_name(code->text);
  if (!parsed_code.has_value()) return std::nullopt;

  BatchRecord record;
  record.spec = spec->text;
  try {
    record.hash = std::stoull(hash->text, nullptr, 16);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  record.status = status->text;
  record.error_code = *parsed_code;
  record.transient = transient->boolean;
  record.attempts = static_cast<int>(attempts->number);
  record.wall_ms = wall_ms != nullptr ? wall_ms->number : 0.0;
  const JsonValue* resumed = find_value(values, "resumed", Kind::kBool);
  record.resumed = resumed != nullptr && resumed->boolean;
  record.patterns = static_cast<std::size_t>(patterns->number);
  record.classes = static_cast<std::size_t>(classes->number);
  record.coverage = coverage->number;
  record.dppm = dppm->number;
  record.error = error->text;
  return record;
}

// ---- ArtifactCache ----

const ArtifactCache::Artifacts& ArtifactCache::get(
    const std::string& circuit_name, fault_model::FaultModel model) {
  const std::pair<std::string, int> key(circuit_name,
                                        static_cast<int>(model));
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    return *it->second;
  }
  // Build outside the map so a throwing build caches nothing. The circuit
  // is heap-allocated FIRST and never moves afterwards — the FaultList
  // and the compiled view both hold references into it.
  auto artifacts = std::make_unique<Artifacts>();
  artifacts->circuit = std::make_unique<const circuit::Circuit>(
      circuit_from_name(circuit_name));
  artifacts->faults = std::make_unique<const fault::FaultList>(
      fault_model::universe(*artifacts->circuit, model));
  artifacts->compiled =
      std::make_shared<const circuit::CompiledCircuit>(*artifacts->circuit);
  ++misses_;
  return *entries_.emplace(key, std::move(artifacts)).first->second;
}

std::size_t ArtifactCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t ArtifactCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

// ---- BatchResult ----

std::string BatchResult::canonical() const {
  std::string out;
  for (const BatchRecord& record : records) {
    out += record.canonical_jsonl();
    out += '\n';
  }
  return out;
}

std::string BatchResult::summary() const {
  std::ostringstream out;
  std::size_t transient_failures = 0;
  for (const BatchRecord& record : records) {
    if (record.status == "failed" && record.transient) ++transient_failures;
  }
  out << "batch: " << records.size() << " specs, " << ok_count << " ok, "
      << failed_count << " failed";
  if (transient_failures > 0) {
    out << " (" << transient_failures << " transient)";
  }
  out << ", " << resumed_count << " resumed from checkpoint; artifact cache "
      << cache_misses << " built, " << cache_hits << " reused";
  return out.str();
}

// ---- manifest expansion ----

std::vector<std::string> read_manifest(const std::string& path) {
  namespace fs = std::filesystem;
  std::vector<std::string> specs;
  std::error_code fs_error;
  if (fs::is_directory(path, fs_error)) {
    for (const fs::directory_entry& entry : fs::directory_iterator(path)) {
      if (entry.path().extension() == ".spec" &&
          entry.is_regular_file()) {
        specs.push_back(entry.path().string());
      }
    }
    std::sort(specs.begin(), specs.end());
    if (specs.empty()) {
      throw Error("manifest directory contains no .spec files: " + path,
                  ErrorCode::kInvalidSpec);
    }
    return specs;
  }

  std::ifstream in(path);
  if (!in) {
    throw IoError("cannot open manifest: " + path);
  }
  const fs::path base = fs::path(path).parent_path();
  std::string raw;
  while (std::getline(in, raw)) {
    const std::size_t comment = raw.find('#');
    if (comment != std::string::npos) raw.erase(comment);
    // Trim whitespace.
    std::size_t first = 0;
    std::size_t last = raw.size();
    while (first < last && std::isspace(static_cast<unsigned char>(
                               raw[first])) != 0) {
      ++first;
    }
    while (last > first && std::isspace(static_cast<unsigned char>(
                               raw[last - 1])) != 0) {
      --last;
    }
    const std::string entry = raw.substr(first, last - first);
    if (entry.empty()) continue;
    const fs::path spec_path(entry);
    specs.push_back(spec_path.is_absolute() ? spec_path.string()
                                            : (base / spec_path).string());
  }
  if (specs.empty()) {
    throw Error("manifest lists no specs: " + path, ErrorCode::kInvalidSpec);
  }
  return specs;
}

// ---- the batch loop ----

BatchResult run_batch(const std::vector<std::string>& specs,
                      const BatchOptions& options) {
  LSIQ_EXPECT(options.retry.max_attempts >= 1,
              "run_batch: retry.max_attempts must be >= 1");
  BatchResult result;
  result.records.resize(specs.size());
  std::vector<char> done(specs.size(), 0);

  // Resume: carry over unchanged-ok records before the store is
  // truncated for rewriting. Failures are always re-attempted.
  std::map<std::string, BatchRecord> carried;
  if (!options.checkpoint.empty() && options.resume) {
    carried = load_checkpoint(options.checkpoint);
  }

  ResultStore store(options.checkpoint, options.stream);

  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto it = carried.find(specs[i]);
    if (it == carried.end() || it->second.status != "ok") continue;
    if (it->second.hash == 0 || it->second.hash != hash_file(specs[i])) {
      continue;  // spec changed since the checkpoint: rerun it
    }
    result.records[i] = it->second;
    result.records[i].resumed = true;
    done[i] = 1;
    store.append(result.records[i]);
  }

  ArtifactCache cache;
  const std::size_t pending = static_cast<std::size_t>(
      std::count(done.begin(), done.end(), 0));
  if (pending > 0) {
    // Lanes claim manifest indices from a shared counter; each record is
    // written to its manifest slot, so result order is independent of
    // scheduling. Spec failures are records (run_one_spec never throws);
    // anything escaping a lane — a checkpoint-write IoError, an armed
    // "batch.record" failpoint — aborts the batch via the pool's
    // first-exception rethrow, leaving the store a valid prefix.
    util::ThreadPool pool(
        std::min(util::resolve_worker_count(options.num_workers), pending));
    std::atomic<std::size_t> next{0};
    pool.run([&](std::size_t) {
      while (true) {
        const std::size_t i = next.fetch_add(1);
        if (i >= specs.size()) return;
        if (done[i] != 0) continue;
        BatchRecord record = run_one_spec(specs[i], cache, options);
        LSIQ_FAILPOINT("batch.record");
        store.append(record);
        result.records[i] = std::move(record);
      }
    });
  }

  for (const BatchRecord& record : result.records) {
    if (record.status == "ok") ++result.ok_count;
    if (record.status == "failed") ++result.failed_count;
    if (record.resumed) ++result.resumed_count;
  }
  result.cache_hits = cache.hits();
  result.cache_misses = cache.misses();
  return result;
}

BatchResult run_manifest(const std::string& manifest,
                         const BatchOptions& options) {
  return run_batch(read_manifest(manifest), options);
}

}  // namespace lsiq::flow
