#include "flow/batch.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "fault_model/universe.hpp"
#include "flow/flow.hpp"
#include "flow/spec_io.hpp"
#include "util/deadline.hpp"
#include "util/failpoint.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace lsiq::flow {

namespace {

namespace json = util::json;

std::string format_hash(std::uint64_t hash) {
  char text[32];
  std::snprintf(text, sizeof text, "0x%016llx",
                static_cast<unsigned long long>(hash));
  return text;
}

/// Bound a failure message: long enough for every real diagnostic in the
/// library, short enough that one pathological what() cannot bloat the
/// store.
std::string sanitize_message(const std::string& message) {
  constexpr std::size_t kMaxLength = 2000;
  if (message.size() <= kMaxLength) return message;
  return message.substr(0, kMaxLength) + "...";
}

void append_record_fields(std::string& out, const BatchRecord& record,
                          bool canonical) {
  out += "{\"spec\":";
  json::append_string(out, record.spec);
  out += ",\"hash\":";
  json::append_string(out, format_hash(record.hash));
  out += ",\"status\":";
  json::append_string(out, record.status);
  out += ",\"error_code\":";
  json::append_string(out, error_code_name(record.error_code));
  out += ",\"transient\":";
  out += record.transient ? "true" : "false";
  out += ",\"attempts\":" + std::to_string(record.attempts);
  if (!canonical) {
    out += ",\"wall_ms\":" + json::format_double(record.wall_ms);
    out += ",\"resumed\":";
    out += record.resumed ? "true" : "false";
  }
  out += ",\"patterns\":" + std::to_string(record.patterns);
  out += ",\"classes\":" + std::to_string(record.classes);
  out += ",\"coverage\":" + json::format_double(record.coverage);
  out += ",\"dppm\":" + json::format_double(record.dppm);
  out += ",\"error\":";
  json::append_string(out, record.error);
  out += "}";
}

// ---- running one spec ----

/// One attempt, start to finish, inside the caller's catch boundary.
/// Fills the ok-summary fields only when the whole flow succeeded.
void run_spec_once(const std::string& path, ArtifactCache& cache,
                   const BatchOptions& options, BatchRecord* record) {
  std::optional<util::DeadlineScope> watchdog;
  if (options.deadline_ms > 0) {
    watchdog.emplace(std::chrono::milliseconds(options.deadline_ms));
  }
  const SpecFile file = read_spec_file(path);
  if (file.circuit.empty()) {
    throw Error("spec file names no circuit", ErrorCode::kInvalidSpec);
  }
  validate_or_throw(file.spec);
  // validate() guaranteed the model name resolves.
  const fault_model::FaultModel model =
      *fault_model::fault_model_from_name(file.spec.fault_model.kind);
  const std::shared_ptr<const ArtifactCache::Artifacts> artifacts =
      cache.get(file.circuit, model);
  if (options.check_only) {
    // Lint-before-run: the analyze gate only. A LintError escapes to the
    // retry boundary and becomes a permanent "lint" failure record.
    check(*artifacts->faults, file.spec);
    record->classes = artifacts->faults->class_count();
    return;
  }
  const FlowResult result = run(*artifacts->faults, file.spec,
                                artifacts->compiled);

  record->patterns = result.patterns.size();
  record->classes = artifacts->faults->class_count();
  record->coverage =
      result.curve.has_value() ? result.curve->final_coverage() : 0.0;
  const double delivered = result.bist.has_value()
                               ? result.bist->signature_coverage
                               : record->coverage;
  record->dppm =
      result.analyzer.has_value() ? result.analyzer->dppm(delivered) : 0.0;
}

}  // namespace

// ---- spec-content hashing (checkpoint staleness detection) ----

std::uint64_t hash_spec_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 0;
  std::uint64_t hash = 14695981039346656037ULL;
  char buffer[4096];
  while (in.read(buffer, sizeof buffer) || in.gcount() > 0) {
    const std::streamsize got = in.gcount();
    for (std::streamsize i = 0; i < got; ++i) {
      hash ^= static_cast<unsigned char>(buffer[i]);
      hash *= 1099511628211ULL;
    }
    if (!in) break;
  }
  return hash;
}

// ---- RetryPolicy ----

int RetryPolicy::backoff_ms(int attempt) const {
  if (backoff_initial_ms <= 0) return 0;
  double delay = backoff_initial_ms;
  for (int k = 1; k < attempt; ++k) {
    delay *= backoff_multiplier;
    if (delay >= backoff_max_ms) break;
  }
  return static_cast<int>(std::min<double>(delay, backoff_max_ms));
}

// ---- BatchRecord ----

std::string BatchRecord::to_jsonl() const {
  std::string out;
  append_record_fields(out, *this, /*canonical=*/false);
  return out;
}

std::string BatchRecord::canonical_jsonl() const {
  std::string out;
  append_record_fields(out, *this, /*canonical=*/true);
  return out;
}

std::optional<BatchRecord> BatchRecord::from_jsonl(const std::string& line) {
  std::map<std::string, json::Value> values;
  if (!json::parse_flat_object(line, &values)) return std::nullopt;

  using Kind = json::Value::Kind;
  const json::Value* spec = json::find(values, "spec", Kind::kString);
  const json::Value* hash = json::find(values, "hash", Kind::kString);
  const json::Value* status = json::find(values, "status", Kind::kString);
  const json::Value* code = json::find(values, "error_code", Kind::kString);
  const json::Value* transient = json::find(values, "transient", Kind::kBool);
  const json::Value* attempts = json::find(values, "attempts", Kind::kNumber);
  const json::Value* wall_ms = json::find(values, "wall_ms", Kind::kNumber);
  const json::Value* patterns = json::find(values, "patterns", Kind::kNumber);
  const json::Value* classes = json::find(values, "classes", Kind::kNumber);
  const json::Value* coverage = json::find(values, "coverage", Kind::kNumber);
  const json::Value* dppm = json::find(values, "dppm", Kind::kNumber);
  const json::Value* error = json::find(values, "error", Kind::kString);
  if (spec == nullptr || hash == nullptr || status == nullptr ||
      code == nullptr || transient == nullptr || attempts == nullptr ||
      patterns == nullptr || classes == nullptr || coverage == nullptr ||
      dppm == nullptr || error == nullptr) {
    return std::nullopt;
  }
  if (status->text != "ok" && status->text != "failed") return std::nullopt;
  const std::optional<ErrorCode> parsed_code =
      error_code_from_name(code->text);
  if (!parsed_code.has_value()) return std::nullopt;

  BatchRecord record;
  record.spec = spec->text;
  try {
    record.hash = std::stoull(hash->text, nullptr, 16);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  record.status = status->text;
  record.error_code = *parsed_code;
  record.transient = transient->boolean;
  record.attempts = static_cast<int>(attempts->number);
  record.wall_ms = wall_ms != nullptr ? wall_ms->number : 0.0;
  const json::Value* resumed = json::find(values, "resumed", Kind::kBool);
  record.resumed = resumed != nullptr && resumed->boolean;
  record.patterns = static_cast<std::size_t>(patterns->number);
  record.classes = static_cast<std::size_t>(classes->number);
  record.coverage = coverage->number;
  record.dppm = dppm->number;
  record.error = error->text;
  return record;
}

// ---- ResultStore ----

ResultStore::ResultStore(const std::string& path, std::ostream* stream,
                         Mode mode)
    : path_(path), stream_(stream) {
  if (!path.empty()) {
    file_.emplace(path, mode == Mode::kTruncate ? std::ios::trunc
                                                : std::ios::app);
    if (!*file_) {
      throw IoError("cannot open result store for writing: " + path);
    }
  }
}

void ResultStore::append(const BatchRecord& record) {
  const std::string line = record.to_jsonl();
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_.has_value()) {
    *file_ << line << '\n' << std::flush;
    if (!*file_) {
      throw IoError("result store write failed: " + path_);
    }
  }
  if (stream_ != nullptr) {
    *stream_ << line << '\n' << std::flush;
  }
}

std::map<std::string, BatchRecord> load_result_store(
    const std::string& path) {
  std::map<std::string, BatchRecord> records;
  std::ifstream in(path);
  if (!in) return records;  // first run: nothing to resume
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::optional<BatchRecord> record = BatchRecord::from_jsonl(line);
    if (record.has_value()) records[record->spec] = std::move(*record);
  }
  return records;
}

// ---- running one spec (public boundary) ----

BatchRecord run_spec_with_retry(const std::string& path, ArtifactCache& cache,
                                const BatchOptions& options) {
  BatchRecord record;
  record.spec = path;
  record.hash = hash_spec_file(path);
  const auto start = std::chrono::steady_clock::now();
  int attempt = 0;
  while (true) {
    ++attempt;
    ErrorCode code = ErrorCode::kOk;
    std::string message;
    try {
      run_spec_once(path, cache, options, &record);
    } catch (const Error& e) {
      code = e.code();
      message = e.what();
    } catch (const std::exception& e) {
      code = ErrorCode::kUnknown;
      message = e.what();
    } catch (...) {
      code = ErrorCode::kUnknown;
      message = "non-standard exception";
    }
    if (code == ErrorCode::kOk) {
      record.status = "ok";
      record.error_code = ErrorCode::kOk;
      record.transient = false;
      record.error.clear();
      break;
    }
    record.status = "failed";
    record.error_code = code;
    record.transient = is_transient(code);
    record.error = sanitize_message(message);
    if (record.transient && attempt < options.retry.max_attempts) {
      const int delay_ms = options.retry.backoff_ms(attempt);
      if (delay_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      }
      continue;
    }
    break;
  }
  record.attempts = attempt;
  record.wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  return record;
}

// ---- ArtifactCache ----

std::shared_ptr<const ArtifactCache::Artifacts> ArtifactCache::get(
    const std::string& circuit_name, fault_model::FaultModel model) {
  const std::pair<std::string, int> key(circuit_name,
                                        static_cast<int>(model));
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    it->second.last_use = ++tick_;
    return it->second.artifacts;
  }
  // Build outside the map so a throwing build caches nothing. The circuit
  // is heap-allocated FIRST and never moves afterwards — the FaultList
  // and the compiled view both hold references into it.
  auto artifacts = std::make_shared<Artifacts>();
  artifacts->circuit = std::make_unique<const circuit::Circuit>(
      circuit_from_name(circuit_name));
  artifacts->faults = std::make_unique<const fault::FaultList>(
      fault_model::universe(*artifacts->circuit, model));
  artifacts->compiled =
      std::make_shared<const circuit::CompiledCircuit>(*artifacts->circuit);
  ++misses_;
  Entry entry;
  entry.artifacts = std::move(artifacts);
  entry.cost = cost_of(*entry.artifacts);
  entry.last_use = ++tick_;
  cost_ += entry.cost;
  std::shared_ptr<const Artifacts> handle = entry.artifacts;
  entries_.emplace(key, std::move(entry));
  evict_locked();
  return handle;
}

void ArtifactCache::set_max_cost(std::size_t max_cost) {
  const std::lock_guard<std::mutex> lock(mutex_);
  max_cost_ = max_cost;
  evict_locked();
}

void ArtifactCache::evict_locked() {
  if (max_cost_ == 0) return;
  while (cost_ > max_cost_ && entries_.size() > 1) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (victim == entries_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    cost_ -= victim->second.cost;
    entries_.erase(victim);
    ++evictions_;
  }
}

ArtifactCache::Stats ArtifactCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.entries = entries_.size();
  stats.cost = cost_;
  stats.max_cost = max_cost_;
  return stats;
}

std::size_t ArtifactCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t ArtifactCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::size_t ArtifactCache::cost_of(const Artifacts& artifacts) {
  return artifacts.compiled != nullptr ? artifacts.compiled->node_count() : 0;
}

// ---- BatchResult ----

std::string BatchResult::canonical() const {
  std::string out;
  for (const BatchRecord& record : records) {
    out += record.canonical_jsonl();
    out += '\n';
  }
  return out;
}

std::string BatchResult::summary() const {
  std::ostringstream out;
  std::size_t transient_failures = 0;
  for (const BatchRecord& record : records) {
    if (record.status == "failed" && record.transient) ++transient_failures;
  }
  out << "batch: " << records.size() << " specs, " << ok_count << " ok, "
      << failed_count << " failed";
  if (transient_failures > 0) {
    out << " (" << transient_failures << " transient)";
  }
  out << ", " << resumed_count << " resumed from checkpoint; artifact cache "
      << cache_misses << " built, " << cache_hits << " reused";
  return out.str();
}

// ---- manifest expansion ----

std::vector<std::string> read_manifest(const std::string& path) {
  namespace fs = std::filesystem;
  std::vector<std::string> specs;
  std::error_code fs_error;
  if (fs::is_directory(path, fs_error)) {
    for (const fs::directory_entry& entry : fs::directory_iterator(path)) {
      if (entry.path().extension() == ".spec" &&
          entry.is_regular_file()) {
        specs.push_back(entry.path().string());
      }
    }
    std::sort(specs.begin(), specs.end());
    if (specs.empty()) {
      throw Error("manifest directory contains no .spec files: " + path,
                  ErrorCode::kInvalidSpec);
    }
    return specs;
  }

  std::ifstream in(path);
  if (!in) {
    throw IoError("cannot open manifest: " + path);
  }
  const fs::path base = fs::path(path).parent_path();
  std::string raw;
  while (std::getline(in, raw)) {
    const std::size_t comment = raw.find('#');
    if (comment != std::string::npos) raw.erase(comment);
    // Trim whitespace.
    std::size_t first = 0;
    std::size_t last = raw.size();
    while (first < last && std::isspace(static_cast<unsigned char>(
                               raw[first])) != 0) {
      ++first;
    }
    while (last > first && std::isspace(static_cast<unsigned char>(
                               raw[last - 1])) != 0) {
      --last;
    }
    const std::string entry = raw.substr(first, last - first);
    if (entry.empty()) continue;
    const fs::path spec_path(entry);
    specs.push_back(spec_path.is_absolute() ? spec_path.string()
                                            : (base / spec_path).string());
  }
  if (specs.empty()) {
    throw Error("manifest lists no specs: " + path, ErrorCode::kInvalidSpec);
  }
  return specs;
}

// ---- the batch loop ----

BatchResult run_batch(const std::vector<std::string>& specs,
                      const BatchOptions& options) {
  LSIQ_EXPECT(options.retry.max_attempts >= 1,
              "run_batch: retry.max_attempts must be >= 1");
  BatchResult result;
  result.records.resize(specs.size());
  std::vector<char> done(specs.size(), 0);

  // Resume: carry over unchanged-ok records before the store is
  // truncated for rewriting. Failures are always re-attempted.
  std::map<std::string, BatchRecord> carried;
  if (!options.checkpoint.empty() && options.resume) {
    carried = load_result_store(options.checkpoint);
  }

  ResultStore store(options.checkpoint, options.stream,
                    ResultStore::Mode::kTruncate);

  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto it = carried.find(specs[i]);
    if (it == carried.end() || it->second.status != "ok") continue;
    if (it->second.hash == 0 ||
        it->second.hash != hash_spec_file(specs[i])) {
      continue;  // spec changed since the checkpoint: rerun it
    }
    result.records[i] = it->second;
    result.records[i].resumed = true;
    done[i] = 1;
    store.append(result.records[i]);
  }

  ArtifactCache cache(options.cache_max_cost);
  const std::size_t pending = static_cast<std::size_t>(
      std::count(done.begin(), done.end(), 0));
  if (pending > 0) {
    // Lanes claim manifest indices from a shared counter; each record is
    // written to its manifest slot, so result order is independent of
    // scheduling. Spec failures are records (run_spec_with_retry never
    // throws); anything escaping a lane — a checkpoint-write IoError, an
    // armed "batch.record" failpoint — aborts the batch via the pool's
    // first-exception rethrow, leaving the store a valid prefix.
    util::ThreadPool pool(
        std::min(util::resolve_worker_count(options.num_workers), pending));
    std::atomic<std::size_t> next{0};
    pool.run([&](std::size_t) {
      while (true) {
        const std::size_t i = next.fetch_add(1);
        if (i >= specs.size()) return;
        if (done[i] != 0) continue;
        BatchRecord record = run_spec_with_retry(specs[i], cache, options);
        LSIQ_FAILPOINT("batch.record");
        store.append(record);
        result.records[i] = std::move(record);
      }
    });
  }

  for (const BatchRecord& record : result.records) {
    if (record.status == "ok") ++result.ok_count;
    if (record.status == "failed") ++result.failed_count;
    if (record.resumed) ++result.resumed_count;
  }
  const ArtifactCache::Stats cache_stats = cache.stats();
  result.cache_hits = cache_stats.hits;
  result.cache_misses = cache_stats.misses;
  return result;
}

BatchResult run_manifest(const std::string& manifest,
                         const BatchOptions& options) {
  return run_batch(read_manifest(manifest), options);
}

}  // namespace lsiq::flow
