// The declarative front door of the whole stack: one FlowSpec describes a
// complete experiment from pattern source to DPPM.
//
// The paper's pipeline — circuit -> fault universe -> ordered patterns ->
// fault grading -> virtual tester -> n0 / DPPM — exists throughout the
// library, but every scenario used to be a hand-wired main(): the strobe
// path in the pre-flow wafer chip-test experiment, the signature path in
// bist::BistSession + wafer::test_lot_bist, and each example re-assembling
// engines by hand. FlowSpec makes every scenario a *config point* instead:
// five orthogonal axes, each selected by name so a spec can live in a text
// file (see flow/spec_io.hpp and tools/lsiq_flow) as easily as in code.
//
//   FaultModel     -- which fault universe coverage is measured on
//                     (stuck_at | transition)
//   PatternSource  -- where the ordered program comes from
//                     (lfsr | atpg | explicit | file)
//   Observation    -- what the tester compares
//                     (full | progressive | misr)
//   Engine         -- which grading engine runs it
//                     (serial | ppsfp | ppsfp_mt)
//   Lot + Analysis -- the virtual lot, the Table-1 strobe readout, the
//                     characterization estimator and the DPPM targets
//
// validate() checks a spec *before* anything expensive runs and returns
// structured (field, message) issues instead of throwing deep in the
// stack; flow::run (flow/flow.hpp) refuses an invalid spec with an
// InvalidSpec carrying the same issues.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/quality_analyzer.hpp"
#include "sim/pattern.hpp"
#include "tpg/atpg.hpp"
#include "util/error.hpp"
#include "wafer/chip_model.hpp"

namespace lsiq::flow {

/// Axis 0: the fault universe the whole flow is measured on. Everything
/// downstream — coverage curve, strobe rows, DPPM — is per model, so one
/// spec flipped between the two kinds yields stuck-at and transition
/// quality statements for the same product side by side.
struct FaultModelSpec {
  /// "stuck_at" (classic single stuck-at, one-pattern detection) or
  /// "transition" (slow-to-rise / slow-to-fall, two-pattern launch/capture
  /// detection). Under "transition" every pattern source is reinterpreted
  /// as a consecutive-pair sequence: pattern i-1 launches what pattern i
  /// captures, so a transition program needs at least 2 patterns.
  std::string kind = "stuck_at";

  friend bool operator==(const FaultModelSpec&,
                         const FaultModelSpec&) = default;
};

/// Axis 1: where the ordered pattern program comes from.
struct PatternSourceSpec {
  /// "lfsr" | "atpg" | "explicit" | "file".
  std::string kind = "lfsr";

  // -- kind == "lfsr": a hardware-faithful LFSR program (tpg::Lfsr) --
  std::size_t pattern_count = 1024;  ///< program length
  int lfsr_width = 32;               ///< register width (see tpg::maximal_taps)
  std::uint64_t lfsr_seed = 1;

  // -- kind == "atpg": random phase + PODEM closure (tpg::generate_tests) --
  tpg::AtpgOptions atpg;
  bool atpg_compact = false;  ///< reverse-order static compaction afterwards

  // -- kind == "explicit": a pattern set built by the caller --
  std::optional<sim::PatternSet> patterns;

  // -- kind == "file": a sim::pattern_io text file --
  std::string file;

  friend bool operator==(const PatternSourceSpec&,
                         const PatternSourceSpec&) = default;
};

/// Axis 2: what the tester observes.
struct ObservationSpec {
  /// "full" (every output, every pattern — scan-style), "progressive"
  /// (output i strobed from pattern i * strobe_step — the 1981 functional
  /// program regime of Table 1), or "misr" (one end-of-session k-bit
  /// signature — logic BIST, aliasing simulated exactly).
  std::string kind = "full";

  std::size_t strobe_step = 0;  ///< "progressive": required > 0

  // -- kind == "misr" --
  int misr_width = 32;          ///< signature length k
  std::uint64_t misr_taps = 0;  ///< 0 = standard polynomial for the width

  friend bool operator==(const ObservationSpec&,
                         const ObservationSpec&) = default;
};

/// Axis 3: which grading engine runs the program.
struct EngineSpec {
  /// "serial" (reference engine), "ppsfp" (single-threaded production
  /// engine), "ppsfp_mt" (worker pool) or "sharded" (contiguous
  /// fault-range shards over the grading core — fault/shard.hpp). All
  /// four grade bit-identically; "serial" has no signature-grading mode,
  /// so misr observation requires one of the PPSFP-family engines.
  std::string kind = "ppsfp";

  /// Workers for "ppsfp_mt" / per-shard workers for "sharded" (and for
  /// misr signature grading): the shared util::resolve_worker_count
  /// convention — 0 = one per hardware thread.
  std::size_t num_threads = 0;

  /// Grading word width in 64-pattern units (1, 4 or 8): width w grades
  /// w*64 patterns per pass through the sim::WideWord kernel. Ignored by
  /// "serial"; misr observation is strictly 64-lane and requires 1.
  std::size_t grade_width = 1;

  /// Shard count for "sharded" (0 = one per hardware thread). Must stay
  /// 0 for every other engine kind.
  std::size_t shards = 0;

  friend bool operator==(const EngineSpec&, const EngineSpec&) = default;
};

/// Axis 4a: the virtual lot. chip_count == 0 and no physical spec means a
/// coverage-only flow: no lot is manufactured, no tester runs, and the
/// strobe readout is unavailable.
struct LotSpec {
  std::size_t chip_count = 277;  ///< the paper's lot size
  double yield = 0.07;           ///< Section 7's estimated yield
  double n0 = 8.0;               ///< ground-truth n0 of the virtual lot
  std::uint64_t seed = 1981;
  /// When set, the physical-defect generator replaces the model-faithful
  /// one (and carries its own chip count and seed).
  std::optional<wafer::PhysicalLotSpec> physical;

  friend bool operator==(const LotSpec&, const LotSpec&) = default;
};

/// Axis 4b: readout and characterization.
struct AnalysisSpec {
  /// Coverage checkpoints for the Table-1 strobe readout. Requires a lot
  /// and pattern-by-pattern observation (full or progressive). Empty = no
  /// strobe table. See table1_strobes() for the paper's checkpoints.
  std::vector<double> strobe_coverages;

  /// How the QualityAnalyzer is characterized: "given" (lot yield and n0
  /// taken at face value), or an estimator over the strobe readout —
  /// "slope" (Eq. 10), "discrete" (Fig. 5 fit), "least_squares".
  std::string method = "given";

  /// Field-reject-rate targets for the report (DPPM = target * 1e6).
  std::vector<double> reject_targets = {0.01, 0.005, 0.001};

  friend bool operator==(const AnalysisSpec&, const AnalysisSpec&) = default;
};

/// The pre-run static-analysis gate (src/analyze/): one policy string per
/// rule class — "off" (skip the class), "warn" (report, run anyway) or
/// "error" (report and refuse the run with analyze::LintError, batch
/// error_code "lint"). The defaults make structural damage fatal and
/// dead/untestable logic advisory; the testability scan is opt-in because
/// it runs a full probability pass over the universe.
struct AnalyzeSpec {
  std::string structure = "error";   ///< cycles, undriven nets, no I/O
  std::string dead_logic = "warn";   ///< dangling/unobservable cones
  std::string untestable = "warn";   ///< constant lines, redundant sites
  std::string testability = "off";   ///< random-pattern-resistant faults

  /// "testability": classes with random-pattern detection probability
  /// below this are reported as resistant_fault findings.
  double resistant_threshold = 0.001;

  friend bool operator==(const AnalyzeSpec&, const AnalyzeSpec&) = default;
};

/// One declarative experiment: fault model -> pattern source ->
/// observation -> engine -> lot -> analysis, linted by the analyze gate.
struct FlowSpec {
  FaultModelSpec fault_model;
  PatternSourceSpec source;
  ObservationSpec observe;
  EngineSpec engine;
  LotSpec lot;
  AnalysisSpec analysis;
  AnalyzeSpec analyze;

  friend bool operator==(const FlowSpec&, const FlowSpec&) = default;
};

/// Table 1's coverage checkpoints — the default strobe readout of the
/// paper's experiment.
std::vector<double> table1_strobes();

/// One validation finding: the spec field at fault ("observe.strobe_step")
/// and a human-readable diagnostic.
struct SpecIssue {
  std::string field;
  std::string message;
};

/// Check a spec without running anything. Returns every issue found (an
/// empty vector means the spec is runnable); flow::run calls this and
/// throws InvalidSpec when the list is non-empty.
std::vector<SpecIssue> validate(const FlowSpec& spec);

/// Thrown by flow::run for a spec that fails validate(); what() joins
/// every issue, issues() keeps them structured.
class InvalidSpec : public Error {
 public:
  explicit InvalidSpec(std::vector<SpecIssue> issues);

  [[nodiscard]] const std::vector<SpecIssue>& issues() const noexcept {
    return issues_;
  }

 private:
  std::vector<SpecIssue> issues_;
};

/// Validate and throw InvalidSpec on any issue.
void validate_or_throw(const FlowSpec& spec);

}  // namespace lsiq::flow
