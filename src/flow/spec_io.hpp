// Text serialization of FlowSpec — the data form of a scenario.
//
// One experiment per file, "key = value" lines, '#' comments. A spec file
// is what turns a scenario sweep into data instead of a new main(): the
// tools/lsiq_flow CLI reads one and prints the Table-1/DPPM report.
//
//     # the Table 1 experiment
//     circuit     = mult16
//     fault_model = stuck_at
//     source      = lfsr
//     patterns    = 1024
//     lfsr_seed   = 1981
//     observe     = progressive
//     strobe_step = 24
//     engine      = ppsfp_mt
//     threads     = 0
//     chips       = 277
//     yield       = 0.07
//     n0          = 8
//     strobes     = 0.05 0.08 0.10 0.15 0.20 0.30 0.36 0.45 0.50 0.65
//     method      = least_squares
//     targets     = 0.01 0.001
//
// Parsing reports malformed input as lsiq::ParseError with a line number
// (same contract as circuit/bench_io); semantic problems are left to
// flow::validate so the CLI can print every issue at once.
#pragma once

#include <iosfwd>
#include <string>

#include "circuit/netlist.hpp"
#include "flow/spec.hpp"

namespace lsiq::flow {

/// A parsed spec file: the circuit selector plus the flow spec proper.
struct SpecFile {
  /// Generator name or .bench path (see circuit_from_name). Empty when
  /// the file gives none — the caller must supply a circuit.
  std::string circuit;
  FlowSpec spec;
};

/// Parse a spec from a stream / string / file. Throws lsiq::ParseError
/// (with the offending line number) for unknown keys or unparsable values.
SpecFile read_spec(std::istream& in);
SpecFile read_spec_string(const std::string& text);
SpecFile read_spec_file(const std::string& path);

/// Serialize a spec back to the key = value form (inverse of read_spec for
/// everything a spec file can express; explicit pattern-set sources cannot
/// be serialized and throw lsiq::Error).
std::string write_spec_string(const SpecFile& file);

/// Build a circuit from a spec-file selector: "c17", "mult<N>",
/// "adder<N>", "alu<N>", "comparator<N>", "decoder<N>", "parity<N>",
/// "majority<N>", "mux<N>", "barrel<N>", or a path ending in ".bench"
/// (read via circuit::read_bench_file). Throws lsiq::Error for an unknown
/// selector.
circuit::Circuit circuit_from_name(const std::string& name);

}  // namespace lsiq::flow
