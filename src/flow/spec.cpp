#include "flow/spec.hpp"

#include <cmath>
#include <sstream>

#include "analyze/rule.hpp"
#include "fault_model/fault_model.hpp"
#include "tpg/lfsr.hpp"

namespace lsiq::flow {

namespace {

bool one_of(const std::string& value,
            std::initializer_list<const char*> names) {
  for (const char* name : names) {
    if (value == name) return true;
  }
  return false;
}

std::string join_issues(const std::vector<SpecIssue>& issues) {
  std::ostringstream out;
  out << "invalid flow spec (" << issues.size() << " issue"
      << (issues.size() == 1 ? "" : "s") << ")";
  for (const SpecIssue& issue : issues) {
    out << "\n  " << issue.field << ": " << issue.message;
  }
  return out.str();
}

}  // namespace

std::vector<double> table1_strobes() {
  return {0.05, 0.08, 0.10, 0.15, 0.20, 0.30, 0.36, 0.45, 0.50, 0.65};
}

InvalidSpec::InvalidSpec(std::vector<SpecIssue> issues)
    : Error(join_issues(issues), ErrorCode::kInvalidSpec),
      issues_(std::move(issues)) {}

void validate_or_throw(const FlowSpec& spec) {
  std::vector<SpecIssue> issues = validate(spec);
  if (!issues.empty()) {
    throw InvalidSpec(std::move(issues));
  }
}

std::vector<SpecIssue> validate(const FlowSpec& spec) {
  std::vector<SpecIssue> issues;
  const auto add = [&issues](const char* field, std::string message) {
    issues.push_back(SpecIssue{field, std::move(message)});
  };

  // ---- axis 0: fault model ----
  // Resolve through the one canonical name list (fault_model.hpp) so the
  // transition-specific rules below cannot drift from what run() selects.
  const std::optional<fault_model::FaultModel> model =
      fault_model::fault_model_from_name(spec.fault_model.kind);
  const bool transition = model == fault_model::FaultModel::kTransition;
  if (!model.has_value()) {
    add("fault_model.kind",
        "unknown fault model '" + spec.fault_model.kind +
            "' (expected stuck_at or transition)");
  }

  // ---- axis 1: pattern source ----
  const PatternSourceSpec& source = spec.source;
  // Every source kind is valid under both fault models: the atpg source
  // dispatches on the universe's model tag (two-pattern launch/capture
  // generation for transition), and its program length is only known
  // after generation — flow::run re-checks the >= 2 pattern floor.
  if (!one_of(source.kind, {"lfsr", "atpg", "explicit", "file"})) {
    add("source.kind", "unknown pattern source '" + source.kind +
                           "' (expected lfsr, atpg, explicit, or file)");
  } else if (source.kind == "lfsr") {
    if (source.pattern_count == 0) {
      add("source.pattern_count", "lfsr source requires pattern_count > 0");
    } else if (transition && source.pattern_count < 2) {
      add("source.pattern_count",
          "transition grading needs at least 2 patterns (one launch/capture "
          "pair)");
    }
    if (!tpg::has_maximal_taps(source.lfsr_width)) {
      add("source.lfsr_width",
          "unsupported LFSR width " + std::to_string(source.lfsr_width) +
              " (use 4, 8, 16, 24, 32, 48 or 64)");
    }
  } else if (source.kind == "atpg") {
    if (source.atpg.podem.max_backtracks <= 0) {
      add("source.atpg.podem.max_backtracks",
          "atpg source requires max_backtracks > 0 (every deterministic "
          "solve would abort immediately)");
    }
  } else if (source.kind == "explicit") {
    if (!source.patterns.has_value() || source.patterns->empty()) {
      add("source.patterns",
          "explicit source requires a non-empty pattern set");
    } else if (transition && source.patterns->size() < 2) {
      add("source.patterns",
          "transition grading needs at least 2 patterns (one launch/capture "
          "pair)");
    }
  } else if (source.kind == "file") {
    if (source.file.empty()) {
      add("source.file", "file source requires a path");
    }
  }

  // ---- axis 2: observation ----
  const ObservationSpec& observe = spec.observe;
  const bool misr = observe.kind == "misr";
  if (!one_of(observe.kind, {"full", "progressive", "misr"})) {
    add("observe.kind", "unknown observation '" + observe.kind +
                            "' (expected full, progressive, or misr)");
  } else if (observe.kind == "progressive") {
    if (observe.strobe_step == 0) {
      add("observe.strobe_step",
          "progressive observation requires strobe_step > 0");
    }
  } else if (misr) {
    if (observe.misr_width < 1 || observe.misr_width > 64) {
      add("observe.misr_width",
          "MISR width must be in [1, 64], got " +
              std::to_string(observe.misr_width));
    } else if (observe.misr_taps == 0 &&
               !tpg::has_maximal_taps(observe.misr_width)) {
      add("observe.misr_width",
          "no standard polynomial for MISR width " +
              std::to_string(observe.misr_width) +
              "; set observe.misr_taps explicitly");
    } else if (observe.misr_taps != 0 && observe.misr_width < 64 &&
               (observe.misr_taps >> observe.misr_width) != 0) {
      add("observe.misr_taps", "MISR taps exceed the register width");
    }
  }

  // ---- axis 3: engine ----
  const EngineSpec& engine = spec.engine;
  if (!one_of(engine.kind, {"serial", "ppsfp", "ppsfp_mt", "sharded"})) {
    add("engine.kind", "unknown engine '" + engine.kind +
                           "' (expected serial, ppsfp, ppsfp_mt, or "
                           "sharded)");
  } else {
    if (engine.kind == "serial" && misr) {
      add("engine.kind",
          "the serial engine has no signature-grading mode; use ppsfp, "
          "ppsfp_mt, or sharded with misr observation");
    }
    if (engine.kind == "ppsfp" && engine.num_threads > 1) {
      add("engine.num_threads",
          "ppsfp is single-threaded; use ppsfp_mt for num_threads > 1");
    }
    if (engine.grade_width != 1 && engine.grade_width != 4 &&
        engine.grade_width != 8) {
      add("engine.grade_width",
          "grade_width must be 1, 4, or 8, got " +
              std::to_string(engine.grade_width));
    } else if (engine.grade_width != 1) {
      if (engine.kind == "serial") {
        add("engine.grade_width",
            "the serial engine has no wide kernel; grade_width requires a "
            "PPSFP-family engine");
      }
      if (misr) {
        add("engine.grade_width",
            "misr signature grading is strictly 64-lane; grade_width must "
            "be 1");
      }
    }
    if (engine.shards != 0 && engine.kind != "sharded") {
      add("engine.shards",
          "shards is only meaningful for engine 'sharded'");
    }
  }

  // ---- axis 4: lot + analysis ----
  const LotSpec& lot = spec.lot;
  const bool has_lot = lot.chip_count > 0 || lot.physical.has_value();
  // NOTE: the range checks below must stay NaN-proof — a NaN compares
  // false against every bound, so each one tests !isfinite explicitly.
  if (!std::isfinite(lot.yield) || lot.yield <= 0.0 || lot.yield >= 1.0) {
    add("lot.yield", "yield must be in (0, 1), got " +
                         std::to_string(lot.yield));
  }
  if (!std::isfinite(lot.n0) || lot.n0 < 1.0) {
    add("lot.n0",
        "n0 must be >= 1 (a defective chip has at least one fault), got " +
            std::to_string(lot.n0));
  }

  const AnalysisSpec& analysis = spec.analysis;
  if (!quality::characterization_method_from_name(analysis.method)
           .has_value()) {
    add("analysis.method",
        "unknown characterization method '" + analysis.method +
            "' (expected given, slope, discrete, or least_squares)");
  } else if (analysis.method != "given") {
    if (analysis.strobe_coverages.empty()) {
      add("analysis.method",
          "characterization from lot data requires strobe checkpoints");
    }
    if (!has_lot) {
      add("analysis.method",
          "characterization requires a lot; set lot.chip_count > 0");
    }
  }

  if (!analysis.strobe_coverages.empty()) {
    if (misr) {
      add("analysis.strobe_coverages",
          "misr observation makes one end-of-session decision; the strobe "
          "readout requires full or progressive observation");
    }
    if (!has_lot) {
      add("analysis.strobe_coverages",
          "the strobe readout requires a lot; set lot.chip_count > 0");
    }
    for (std::size_t i = 0; i < analysis.strobe_coverages.size(); ++i) {
      const double strobe = analysis.strobe_coverages[i];
      if (!std::isfinite(strobe) || strobe <= 0.0 || strobe > 1.0) {
        add("analysis.strobe_coverages",
            "strobe coverages must lie in (0, 1], got " +
                std::to_string(strobe));
        break;
      }
      if (i > 0 && strobe <= analysis.strobe_coverages[i - 1]) {
        add("analysis.strobe_coverages",
            "strobe coverages must be strictly increasing");
        break;
      }
    }
  }

  // ---- the analyze gate ----
  const AnalyzeSpec& analyze = spec.analyze;
  const auto check_policy = [&](const char* field, const std::string& value) {
    if (!lsiq::analyze::policy_from_name(value).has_value()) {
      add(field, "unknown analyze policy '" + value +
                     "' (expected off, warn, or error)");
    }
  };
  check_policy("analyze.structure", analyze.structure);
  check_policy("analyze.dead_logic", analyze.dead_logic);
  check_policy("analyze.untestable", analyze.untestable);
  check_policy("analyze.testability", analyze.testability);
  if (!std::isfinite(analyze.resistant_threshold) ||
      analyze.resistant_threshold <= 0.0 ||
      analyze.resistant_threshold >= 1.0) {
    add("analyze.resistant_threshold",
        "resistant threshold must be in (0, 1), got " +
            std::to_string(analyze.resistant_threshold));
  }

  for (const double target : analysis.reject_targets) {
    if (!std::isfinite(target) || target <= 0.0 || target >= 1.0) {
      add("analysis.reject_targets",
          "reject targets must lie in (0, 1), got " +
              std::to_string(target));
      break;
    }
  }

  return issues;
}

}  // namespace lsiq::flow
