// flow::run — execute one declarative FlowSpec end to end.
//
// One call composes what used to take a hand-written main(): materialize
// the pattern source, grade it under the requested observation with the
// requested engine, manufacture and test the virtual lot, read out the
// Table-1 strobe table, and characterize a QualityAnalyzer. Every
// combination of the spec's axes maps onto the same underlying engines the
// hand-wired paths used (fault::simulate_*, bist::BistSession,
// wafer::test_lot / test_lot_bist), so results are bit-identical to those
// paths — the golden-equivalence tests in tests/test_flow.cpp pin this.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analyze/rule.hpp"
#include "bist/result.hpp"
#include "fault/coverage.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "flow/spec.hpp"
#include "wafer/experiment.hpp"
#include "wafer/tester.hpp"

namespace lsiq::flow {

/// Everything one flow produces. Which members are populated depends on
/// the spec: `fault_sim` for full/progressive observation, `bist` for misr
/// observation, `atpg` when the source ran test generation, `lot`/`test`/
/// `table` when the spec requests a lot, `analyzer` always.
struct FlowResult {
  /// The spec that produced this result (self-describing reports). An
  /// explicit source's pattern payload is dropped here — `patterns` below
  /// is the canonical program.
  FlowSpec spec;

  /// The materialized, ordered pattern program (run() always fills it;
  /// the default is an empty one-input placeholder since PatternSet
  /// requires input_count > 0).
  sim::PatternSet patterns{1};

  /// Test-generation outcome when source.kind == "atpg" (coverage,
  /// redundant/aborted class counts; `patterns` already reflects the
  /// compaction flag).
  std::optional<tpg::AtpgResult> atpg;

  /// Full/progressive observation: per-class first detections.
  std::optional<fault::FaultSimResult> fault_sim;

  /// Misr observation: the graded BIST session (signatures, aliasing).
  std::optional<bist::BistResult> bist;

  /// Cumulative coverage vs pattern count under the spec's observation —
  /// the strobed curve for full/progressive, the signature-divergence
  /// curve for misr.
  std::optional<fault::CoverageCurve> curve;

  std::optional<wafer::ChipLot> lot;
  std::optional<wafer::LotTestResult> test;

  /// Table-1-style readout at analysis.strobe_coverages.
  std::vector<wafer::StrobeRow> table;

  /// Characterized product (per analysis.method).
  std::optional<quality::QualityAnalyzer> analyzer;

  /// Warn-severity findings of the pre-run analyze gate (spec.analyze).
  /// Error-severity findings never land here — they abort run() with
  /// analyze::LintError before anything is graded.
  std::vector<analyze::Diagnostic> lint;

  /// Universe faults (and their equivalence classes) the implication
  /// engine proved untestable before any pattern was graded — the
  /// denominator correction Section 1 allows: a statically redundant
  /// fault can be removed from N when quoting coverage or DPPM. Both stay
  /// 0 when spec.analyze.untestable is "off".
  std::size_t statically_redundant_classes = 0;
  std::size_t statically_redundant_faults = 0;

  /// Final coverage of the program under the spec's observation.
  [[nodiscard]] double final_coverage() const;

  /// (coverage, fraction failed) points of the strobe table — the
  /// Section 5 estimator input.
  [[nodiscard]] std::vector<quality::CoveragePoint> points() const;

  /// Human-readable Table-1 / DPPM report (what tools/lsiq_flow prints).
  [[nodiscard]] std::string report() const;
};

/// Materialize the pattern program of a source axis on its own — for
/// callers that need the program but not the rest of the flow (the fault
/// dictionary in examples/fault_diagnosis.cpp, pattern-file tooling).
/// For "atpg" sources `atpg_out`, when non-null, receives the generation
/// statistics.
sim::PatternSet make_patterns(
    const fault::FaultList& faults, const PatternSourceSpec& source,
    std::optional<tpg::AtpgResult>* atpg_out = nullptr);

/// Run a spec against a collapsed fault universe. The list's model
/// (FaultList::model()) must match spec.fault_model. Throws InvalidSpec
/// when validate(spec) reports issues, and lsiq::Error when a strobe
/// coverage is never reached by the materialized program.
///
/// `compiled`, when non-null, must be a compiled view of
/// faults.circuit(); the grading engines use it instead of recompiling —
/// this is how the batch runner's per-(circuit, fault_model) artifact
/// cache amortizes compilation across many specs. Results are
/// bit-identical either way.
///
/// Failure injection and cancellation: run() passes the named failpoint
/// sites "flow.run" (entry), "flow.patterns" (pattern materialization)
/// and "flow.grade" (before grading) — see util/failpoint.hpp — and the
/// grading engines poll the cooperative deadline watchdog
/// (util/deadline.hpp) once per 64-pattern block, so a caller-installed
/// DeadlineScope bounds a wedged run.
FlowResult run(const fault::FaultList& faults, const FlowSpec& spec,
               std::shared_ptr<const circuit::CompiledCircuit> compiled =
                   nullptr);

/// The pre-run lint gate on its own: run the spec's analyze section over
/// the universe's circuit without materializing patterns or grading
/// anything. Returns the warn-severity diagnostics; throws
/// analyze::LintError (ErrorCode::kLint, permanent) when any enabled rule
/// class set to "error" fired, and InvalidSpec when validate() rejects
/// the spec. run() calls this before touching the pattern source; the
/// `lsiq_flow --check` mode and the batch runner's check-only mode call
/// it directly.
std::vector<analyze::Diagnostic> check(const fault::FaultList& faults,
                                       const FlowSpec& spec);

/// What the pre-run gate learned: the warn-severity diagnostics plus the
/// static-redundancy census over the universe (see the FlowResult fields
/// of the same names). `lsiq_flow --check` prints the census so a dry run
/// answers "how many faults can no pattern ever catch" without grading.
struct CheckOutcome {
  std::vector<analyze::Diagnostic> diagnostics;
  std::size_t statically_redundant_classes = 0;
  std::size_t statically_redundant_faults = 0;
};

/// check() with the static-redundancy census. Same throwing behavior.
CheckOutcome check_detailed(const fault::FaultList& faults,
                            const FlowSpec& spec);

/// Convenience overload: enumerate the spec's fault-model universe of the
/// circuit (fault_model::universe) first, then run.
FlowResult run(const circuit::Circuit& circuit, const FlowSpec& spec);

}  // namespace lsiq::flow
