// Hardened batch flow runner: many specs, one process, no single point of
// failure.
//
// `lsiq_flow` runs exactly one spec; a coverage campaign (a fault-model
// sweep, a MISR width study, a pattern-source shoot-out) is hundreds. This
// module turns a MANIFEST — a directory of .spec files or a list file —
// into a result set, executing specs concurrently on the shared
// util::ThreadPool and streaming one JSON-lines record per spec to a
// result store that doubles as a checkpoint.
//
// Robustness is the contract, in five layers:
//
//   * Crash isolation — every spec runs inside its own catch-everything
//     boundary; one throwing spec produces one structured failure record
//     and never takes the batch down.
//   * Error taxonomy — failures carry the stable ErrorCode of
//     util/error.hpp, split transient vs permanent (is_transient), so a
//     record is machine-triageable without parsing what() strings.
//   * Bounded retry — transient failures (I/O hiccups, resource
//     exhaustion) are retried up to RetryPolicy::max_attempts with
//     exponential backoff; permanent failures fail fast on attempt 1.
//   * Deadline watchdog — BatchOptions::deadline_ms installs a
//     cooperative util::DeadlineScope per spec; the grading engines poll
//     it every 64-pattern block, so a wedged run ends as a structured
//     `deadline` record instead of hanging the batch.
//   * Checkpoint / resume — the JSONL store is re-read on the next run of
//     the same manifest: records marked "ok" whose spec file is unchanged
//     (content hash) are carried over, failures are re-attempted, and a
//     torn trailing line (killed mid-write) is tolerated. A killed batch
//     resumed from its checkpoint converges to the same canonical result
//     set as an uninterrupted run.
//
// The batch also lands the first increment of the ROADMAP's
// flow-as-a-service cache: an ArtifactCache keyed by (circuit selector,
// fault model) shares the built circuit::Circuit, the collapsed
// fault universe AND the circuit::CompiledCircuit view across every spec
// in the batch, so N specs over one product compile once instead of N
// times.
//
// Failure injection for tests and CI rides on util/failpoint.hpp: the
// sites "spec.read", "flow.run", "flow.patterns", "flow.grade" and
// "batch.record" can be armed via LSIQ_FAILPOINTS to fault any stage
// deterministically (see tests/test_batch.cpp).
#pragma once

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "circuit/compiled.hpp"
#include "circuit/netlist.hpp"
#include "fault/fault_list.hpp"
#include "fault_model/fault_model.hpp"
#include "util/error.hpp"

namespace lsiq::flow {

/// Bounded retry with exponential backoff, applied ONLY to failures whose
/// ErrorCode classifies transient (is_transient in util/error.hpp).
struct RetryPolicy {
  /// Total tries per spec, first attempt included. 1 = never retry.
  int max_attempts = 3;
  /// Delay before retry k (1-based) is
  /// min(backoff_initial_ms * multiplier^(k-1), backoff_max_ms).
  /// 0 disables sleeping (deterministic tests).
  int backoff_initial_ms = 100;
  double backoff_multiplier = 4.0;
  int backoff_max_ms = 2000;

  /// The delay (ms) to sleep after failed attempt `attempt` (1-based).
  [[nodiscard]] int backoff_ms(int attempt) const;
};

/// Everything run_batch needs besides the spec list.
struct BatchOptions {
  /// Concurrent spec runners (util::resolve_worker_count convention:
  /// 0 = one per hardware thread). Specs are independent; each runs its
  /// own engine configuration, so batches of ppsfp_mt specs usually want
  /// a small worker count here.
  std::size_t num_workers = 0;

  RetryPolicy retry;

  /// Per-spec cooperative deadline in milliseconds; 0 = none. Overruns
  /// end the spec with ErrorCode::kDeadline (permanent — no retry).
  int deadline_ms = 0;

  /// JSONL result store that doubles as the checkpoint. Empty = keep
  /// results in memory only (no resume).
  std::string checkpoint;

  /// Re-use "ok" records from an existing checkpoint whose spec file
  /// content hash still matches; false reruns everything.
  bool resume = true;

  /// Live JSONL stream (the CLI passes stdout); records are written in
  /// completion order. Null = none. Stream write failures are the
  /// caller's to detect (std::ostream state); CHECKPOINT write failures
  /// abort the batch with IoError — a result store that drops records is
  /// not a result store.
  std::ostream* stream = nullptr;

  /// Lint-only dry run (`lsiq_flow --check --batch`): every spec is
  /// parsed, validated, resolved against its circuit and pushed through
  /// the flow::check analyze gate, but nothing is graded. A gate refusal
  /// is a "failed" record with error_code "lint" (permanent, no retry);
  /// ok records carry the universe's class count with zero patterns.
  bool check_only = false;

  /// ArtifactCache cost bound (see ArtifactCache::set_max_cost) for the
  /// batch's cache; 0 = unbounded, the right default for one-shot batches
  /// that touch a handful of products. The long-lived flow service sets a
  /// real bound so memory stays flat across thousands of jobs.
  std::size_t cache_max_cost = 0;
};

/// One spec's outcome — one JSONL line in the result store.
struct BatchRecord {
  std::string spec;          ///< path as listed in the manifest
  std::uint64_t hash = 0;    ///< FNV-1a of the spec file bytes (0: unread)
  std::string status;        ///< "ok" | "failed"
  ErrorCode error_code = ErrorCode::kOk;
  bool transient = false;    ///< is_transient(error_code)
  int attempts = 0;          ///< tries consumed (retries included)
  double wall_ms = 0.0;      ///< total wall clock, backoff included
  bool resumed = false;      ///< carried over from the checkpoint

  // -- "ok" summary --
  std::size_t patterns = 0;      ///< materialized program length
  std::size_t classes = 0;       ///< collapsed fault classes graded
  double coverage = 0.0;         ///< final coverage under the observation
  double dppm = 0.0;             ///< DPPM at the delivered coverage

  std::string error;         ///< "failed": sanitized what() text

  /// One JSONL line (stable key order, '\n' not included).
  [[nodiscard]] std::string to_jsonl() const;

  /// to_jsonl minus the volatile fields (wall_ms, resumed): the form in
  /// which two runs of the same manifest are comparable byte-for-byte.
  [[nodiscard]] std::string canonical_jsonl() const;

  /// Parse a store line; nullopt for a torn or foreign line (resume
  /// tolerates those rather than refusing the whole checkpoint).
  static std::optional<BatchRecord> from_jsonl(const std::string& line);
};

/// The shared artifact cache: circuit + collapsed fault universe +
/// compiled view per (circuit selector, fault model). Thread-safe.
///
/// Entries are handed out as shared_ptr, so EVICTION is safe: an evicted
/// entry stays alive until the last job using it drops its handle — the
/// cache only stops handing it out. The eviction policy is cost-weighted
/// LRU: each entry's cost is its compiled-circuit size (node count — the
/// quantity the simulation buffers and CSR arrays all scale with), and
/// whenever the live total exceeds max_cost the least-recently-used
/// entries are dropped. The most-recently-used entry is never evicted, so
/// one artifact bigger than the whole bound still builds and runs — the
/// bound then degrades to "cache nothing else".
///
/// max_cost == 0 means unbounded (the one-shot batch default). The
/// long-lived flow service (src/service/) sets a real bound so a daemon's
/// memory stays flat across thousands of jobs; hits/misses/evictions and
/// the live cost are exposed for its `stats` request.
class ArtifactCache {
 public:
  struct Artifacts {
    std::unique_ptr<const circuit::Circuit> circuit;
    std::unique_ptr<const fault::FaultList> faults;
    std::shared_ptr<const circuit::CompiledCircuit> compiled;
  };

  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
    std::size_t entries = 0;   ///< live (non-evicted) entries
    std::size_t cost = 0;      ///< summed cost of live entries
    std::size_t max_cost = 0;  ///< configured bound; 0 = unbounded
  };

  ArtifactCache() = default;
  explicit ArtifactCache(std::size_t max_cost) : max_cost_(max_cost) {}

  /// Build-or-reuse. Builds under the cache lock (cold starts serialize;
  /// steady state is one map lookup). Throws what circuit_from_name /
  /// universe construction throws; failures are not cached. The returned
  /// handle stays valid for the handle's lifetime regardless of eviction.
  std::shared_ptr<const Artifacts> get(const std::string& circuit_name,
                                       fault_model::FaultModel model);

  /// (Re)configure the cost bound; evicts immediately when the new bound
  /// is tighter than the live total. 0 = unbounded.
  void set_max_cost(std::size_t max_cost);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t hits() const;
  [[nodiscard]] std::size_t misses() const;

  /// The cost charged for one entry (compiled node count) — exposed so
  /// tests and capacity planning can size max_cost in the same unit.
  [[nodiscard]] static std::size_t cost_of(const Artifacts& artifacts);

 private:
  struct Entry {
    std::shared_ptr<const Artifacts> artifacts;
    std::size_t cost = 0;
    std::uint64_t last_use = 0;  ///< recency tick for LRU ordering
  };

  /// Drop LRU entries (never the newest) until cost_ fits max_cost_.
  /// Caller holds mutex_.
  void evict_locked();

  mutable std::mutex mutex_;
  std::map<std::pair<std::string, int>, Entry> entries_;
  std::uint64_t tick_ = 0;
  std::size_t cost_ = 0;
  std::size_t max_cost_ = 0;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t evictions_ = 0;
};

/// The JSONL result store / checkpoint writer. Thread-safe; every append
/// is flushed (the durability point). kTruncate is the batch convention —
/// the store is rebuilt from carried-over plus fresh records each run.
/// kAppend is the flow-service convention: the daemon's store is an
/// append-only journal that survives daemon restarts, and readers apply
/// last-record-per-spec semantics (load_result_store).
class ResultStore {
 public:
  enum class Mode { kTruncate, kAppend };

  /// Opens `path` (empty = no file); `stream` additionally receives every
  /// line (the CLI passes stdout). Throws IoError when the file cannot be
  /// opened.
  ResultStore(const std::string& path, std::ostream* stream,
              Mode mode = Mode::kTruncate);

  /// Commit one record: append + flush. A store write failure throws
  /// IoError — a result store that drops records is worse than no store.
  void append(const BatchRecord& record);

 private:
  std::string path_;
  std::ostream* stream_;
  std::optional<std::ofstream> file_;
  std::mutex mutex_;
};

/// Last record per spec from an existing store; unparsable (torn) lines
/// are skipped, so a store killed mid-write still loads. Missing file =
/// empty map (first run).
std::map<std::string, BatchRecord> load_result_store(const std::string& path);

/// FNV-1a over the spec file's bytes; 0 when the file cannot be read (a
/// record hashed 0 is never treated as resumable).
std::uint64_t hash_spec_file(const std::string& path);

/// The crash-isolation + retry boundary around ONE spec: run it under the
/// options' deadline, retry transient failures per options.retry, and
/// NEVER throw — every failure becomes a structured record. This is the
/// shared unit of work of run_batch and the flow service's worker lanes.
BatchRecord run_spec_with_retry(const std::string& path, ArtifactCache& cache,
                                const BatchOptions& options);

/// The whole batch's outcome. records is in MANIFEST order regardless of
/// completion order, so two runs of one manifest are directly comparable.
struct BatchResult {
  std::vector<BatchRecord> records;
  std::size_t ok_count = 0;
  std::size_t failed_count = 0;
  std::size_t resumed_count = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;

  [[nodiscard]] bool all_ok() const noexcept { return failed_count == 0; }

  /// Canonical serialization: canonical_jsonl of every record in manifest
  /// order, one per line. Two runs of the same manifest (interrupted or
  /// not) must produce identical canonical() bytes — the checkpoint
  /// correctness contract tests/test_batch.cpp pins.
  [[nodiscard]] std::string canonical() const;

  /// Human summary ("12 ok, 2 failed (1 transient), 8 resumed, ...").
  [[nodiscard]] std::string summary() const;
};

/// Expand a manifest into spec paths: a DIRECTORY yields every *.spec in
/// it, sorted by name; a LIST FILE yields one path per non-comment line,
/// relative entries resolved against the list file's directory. Throws
/// IoError when the manifest cannot be read and Error(kInvalidSpec) when
/// it names no specs (an empty campaign is a mistake, not a success).
std::vector<std::string> read_manifest(const std::string& path);

/// Run every spec and return the full result set. Individual spec
/// failures NEVER throw — they are records. Throws only for batch-level
/// faults: an unwritable checkpoint (IoError) or a failure injected at
/// the "batch.record" site (how the tests simulate a killed batch).
BatchResult run_batch(const std::vector<std::string>& specs,
                      const BatchOptions& options = {});

/// read_manifest + run_batch.
BatchResult run_manifest(const std::string& manifest,
                         const BatchOptions& options = {});

}  // namespace lsiq::flow
