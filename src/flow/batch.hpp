// Hardened batch flow runner: many specs, one process, no single point of
// failure.
//
// `lsiq_flow` runs exactly one spec; a coverage campaign (a fault-model
// sweep, a MISR width study, a pattern-source shoot-out) is hundreds. This
// module turns a MANIFEST — a directory of .spec files or a list file —
// into a result set, executing specs concurrently on the shared
// util::ThreadPool and streaming one JSON-lines record per spec to a
// result store that doubles as a checkpoint.
//
// Robustness is the contract, in five layers:
//
//   * Crash isolation — every spec runs inside its own catch-everything
//     boundary; one throwing spec produces one structured failure record
//     and never takes the batch down.
//   * Error taxonomy — failures carry the stable ErrorCode of
//     util/error.hpp, split transient vs permanent (is_transient), so a
//     record is machine-triageable without parsing what() strings.
//   * Bounded retry — transient failures (I/O hiccups, resource
//     exhaustion) are retried up to RetryPolicy::max_attempts with
//     exponential backoff; permanent failures fail fast on attempt 1.
//   * Deadline watchdog — BatchOptions::deadline_ms installs a
//     cooperative util::DeadlineScope per spec; the grading engines poll
//     it every 64-pattern block, so a wedged run ends as a structured
//     `deadline` record instead of hanging the batch.
//   * Checkpoint / resume — the JSONL store is re-read on the next run of
//     the same manifest: records marked "ok" whose spec file is unchanged
//     (content hash) are carried over, failures are re-attempted, and a
//     torn trailing line (killed mid-write) is tolerated. A killed batch
//     resumed from its checkpoint converges to the same canonical result
//     set as an uninterrupted run.
//
// The batch also lands the first increment of the ROADMAP's
// flow-as-a-service cache: an ArtifactCache keyed by (circuit selector,
// fault model) shares the built circuit::Circuit, the collapsed
// fault universe AND the circuit::CompiledCircuit view across every spec
// in the batch, so N specs over one product compile once instead of N
// times.
//
// Failure injection for tests and CI rides on util/failpoint.hpp: the
// sites "spec.read", "flow.run", "flow.patterns", "flow.grade" and
// "batch.record" can be armed via LSIQ_FAILPOINTS to fault any stage
// deterministically (see tests/test_batch.cpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "circuit/compiled.hpp"
#include "circuit/netlist.hpp"
#include "fault/fault_list.hpp"
#include "fault_model/fault_model.hpp"
#include "util/error.hpp"

namespace lsiq::flow {

/// Bounded retry with exponential backoff, applied ONLY to failures whose
/// ErrorCode classifies transient (is_transient in util/error.hpp).
struct RetryPolicy {
  /// Total tries per spec, first attempt included. 1 = never retry.
  int max_attempts = 3;
  /// Delay before retry k (1-based) is
  /// min(backoff_initial_ms * multiplier^(k-1), backoff_max_ms).
  /// 0 disables sleeping (deterministic tests).
  int backoff_initial_ms = 100;
  double backoff_multiplier = 4.0;
  int backoff_max_ms = 2000;

  /// The delay (ms) to sleep after failed attempt `attempt` (1-based).
  [[nodiscard]] int backoff_ms(int attempt) const;
};

/// Everything run_batch needs besides the spec list.
struct BatchOptions {
  /// Concurrent spec runners (util::resolve_worker_count convention:
  /// 0 = one per hardware thread). Specs are independent; each runs its
  /// own engine configuration, so batches of ppsfp_mt specs usually want
  /// a small worker count here.
  std::size_t num_workers = 0;

  RetryPolicy retry;

  /// Per-spec cooperative deadline in milliseconds; 0 = none. Overruns
  /// end the spec with ErrorCode::kDeadline (permanent — no retry).
  int deadline_ms = 0;

  /// JSONL result store that doubles as the checkpoint. Empty = keep
  /// results in memory only (no resume).
  std::string checkpoint;

  /// Re-use "ok" records from an existing checkpoint whose spec file
  /// content hash still matches; false reruns everything.
  bool resume = true;

  /// Live JSONL stream (the CLI passes stdout); records are written in
  /// completion order. Null = none. Stream write failures are the
  /// caller's to detect (std::ostream state); CHECKPOINT write failures
  /// abort the batch with IoError — a result store that drops records is
  /// not a result store.
  std::ostream* stream = nullptr;

  /// Lint-only dry run (`lsiq_flow --check --batch`): every spec is
  /// parsed, validated, resolved against its circuit and pushed through
  /// the flow::check analyze gate, but nothing is graded. A gate refusal
  /// is a "failed" record with error_code "lint" (permanent, no retry);
  /// ok records carry the universe's class count with zero patterns.
  bool check_only = false;
};

/// One spec's outcome — one JSONL line in the result store.
struct BatchRecord {
  std::string spec;          ///< path as listed in the manifest
  std::uint64_t hash = 0;    ///< FNV-1a of the spec file bytes (0: unread)
  std::string status;        ///< "ok" | "failed"
  ErrorCode error_code = ErrorCode::kOk;
  bool transient = false;    ///< is_transient(error_code)
  int attempts = 0;          ///< tries consumed (retries included)
  double wall_ms = 0.0;      ///< total wall clock, backoff included
  bool resumed = false;      ///< carried over from the checkpoint

  // -- "ok" summary --
  std::size_t patterns = 0;      ///< materialized program length
  std::size_t classes = 0;       ///< collapsed fault classes graded
  double coverage = 0.0;         ///< final coverage under the observation
  double dppm = 0.0;             ///< DPPM at the delivered coverage

  std::string error;         ///< "failed": sanitized what() text

  /// One JSONL line (stable key order, '\n' not included).
  [[nodiscard]] std::string to_jsonl() const;

  /// to_jsonl minus the volatile fields (wall_ms, resumed): the form in
  /// which two runs of the same manifest are comparable byte-for-byte.
  [[nodiscard]] std::string canonical_jsonl() const;

  /// Parse a store line; nullopt for a torn or foreign line (resume
  /// tolerates those rather than refusing the whole checkpoint).
  static std::optional<BatchRecord> from_jsonl(const std::string& line);
};

/// The batch-wide artifact cache: circuit + collapsed fault universe +
/// compiled view per (circuit selector, fault model). Thread-safe; entries
/// live until the cache dies, and every returned reference stays valid for
/// the cache's lifetime (entries are heap-allocated and never evicted —
/// a batch touches a handful of products, not millions).
class ArtifactCache {
 public:
  struct Artifacts {
    std::unique_ptr<const circuit::Circuit> circuit;
    std::unique_ptr<const fault::FaultList> faults;
    std::shared_ptr<const circuit::CompiledCircuit> compiled;
  };

  /// Build-or-reuse. Builds under the cache lock (cold starts serialize;
  /// steady state is one map lookup). Throws what circuit_from_name /
  /// universe construction throws; failures are not cached.
  const Artifacts& get(const std::string& circuit_name,
                       fault_model::FaultModel model);

  [[nodiscard]] std::size_t hits() const;
  [[nodiscard]] std::size_t misses() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::pair<std::string, int>, std::unique_ptr<Artifacts>>
      entries_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

/// The whole batch's outcome. records is in MANIFEST order regardless of
/// completion order, so two runs of one manifest are directly comparable.
struct BatchResult {
  std::vector<BatchRecord> records;
  std::size_t ok_count = 0;
  std::size_t failed_count = 0;
  std::size_t resumed_count = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;

  [[nodiscard]] bool all_ok() const noexcept { return failed_count == 0; }

  /// Canonical serialization: canonical_jsonl of every record in manifest
  /// order, one per line. Two runs of the same manifest (interrupted or
  /// not) must produce identical canonical() bytes — the checkpoint
  /// correctness contract tests/test_batch.cpp pins.
  [[nodiscard]] std::string canonical() const;

  /// Human summary ("12 ok, 2 failed (1 transient), 8 resumed, ...").
  [[nodiscard]] std::string summary() const;
};

/// Expand a manifest into spec paths: a DIRECTORY yields every *.spec in
/// it, sorted by name; a LIST FILE yields one path per non-comment line,
/// relative entries resolved against the list file's directory. Throws
/// IoError when the manifest cannot be read and Error(kInvalidSpec) when
/// it names no specs (an empty campaign is a mistake, not a success).
std::vector<std::string> read_manifest(const std::string& path);

/// Run every spec and return the full result set. Individual spec
/// failures NEVER throw — they are records. Throws only for batch-level
/// faults: an unwritable checkpoint (IoError) or a failure injected at
/// the "batch.record" site (how the tests simulate a killed batch).
BatchResult run_batch(const std::vector<std::string>& specs,
                      const BatchOptions& options = {});

/// read_manifest + run_batch.
BatchResult run_manifest(const std::string& manifest,
                         const BatchOptions& options = {});

}  // namespace lsiq::flow
