#include "service/protocol.hpp"

#include <map>

#include "util/json.hpp"
#include "util/version.hpp"

namespace lsiq::service {

namespace json = util::json;

std::string format_request(const Request& request) {
  std::string out = "{\"op\":";
  json::append_string(out, request.op);
  if (!request.spec.empty()) {
    out += ",\"spec\":";
    json::append_string(out, request.spec);
  }
  if (!request.spec_text.empty()) {
    out += ",\"spec_text\":";
    json::append_string(out, request.spec_text);
  }
  if (request.priority != 0) {
    out += ",\"priority\":" + std::to_string(request.priority);
  }
  if (request.deadline_ms >= 0) {
    out += ",\"deadline_ms\":" + std::to_string(request.deadline_ms);
  }
  if (request.has_job) {
    out += ",\"job\":" + std::to_string(request.job);
  }
  out += "}";
  return out;
}

std::optional<Request> parse_request(const std::string& line) {
  std::map<std::string, json::Value> values;
  if (!json::parse_flat_object(line, &values)) return std::nullopt;
  using Kind = json::Value::Kind;
  const json::Value* op = json::find(values, "op", Kind::kString);
  if (op == nullptr) return std::nullopt;

  Request request;
  request.op = op->text;
  if (const json::Value* spec = json::find(values, "spec", Kind::kString)) {
    request.spec = spec->text;
  }
  if (const json::Value* text =
          json::find(values, "spec_text", Kind::kString)) {
    request.spec_text = text->text;
  }
  if (const json::Value* priority =
          json::find(values, "priority", Kind::kNumber)) {
    request.priority = static_cast<int>(priority->number);
  }
  if (const json::Value* deadline =
          json::find(values, "deadline_ms", Kind::kNumber)) {
    request.deadline_ms = static_cast<int>(deadline->number);
  }
  if (const json::Value* job = json::find(values, "job", Kind::kNumber)) {
    request.job = static_cast<std::uint64_t>(job->number);
    request.has_job = true;
  }
  return request;
}

std::string ok_response() { return "{\"ok\":true}"; }

std::string error_response(ErrorCode code, const std::string& message) {
  std::string out = "{\"ok\":false,\"error_code\":";
  json::append_string(out, error_code_name(code));
  out += ",\"transient\":";
  out += is_transient(code) ? "true" : "false";
  out += ",\"error\":";
  json::append_string(out, message);
  out += "}";
  return out;
}

std::string submit_response(std::uint64_t job, JobState state) {
  std::string out = "{\"ok\":true,\"job\":" + std::to_string(job);
  out += ",\"state\":";
  json::append_string(out, job_state_name(state));
  out += "}";
  return out;
}

std::string job_response(const JobInfo& info) {
  std::string out = "{\"ok\":true,\"job\":" + std::to_string(info.id);
  out += ",\"spec\":";
  json::append_string(out, info.spec);
  out += ",\"state\":";
  json::append_string(out, job_state_name(info.state));
  out += ",\"priority\":" + std::to_string(info.priority);
  if (info.state == JobState::kDone) {
    out += ",\"result\":";
    json::append_string(out, info.record.status);
    out += ",\"error_code\":";
    json::append_string(out, error_code_name(info.record.error_code));
    out += ",\"resumed\":";
    out += info.record.resumed ? "true" : "false";
  }
  out += "}";
  return out;
}

std::string result_response(const JobInfo& info) {
  // Graft the record's own JSONL fields onto the response envelope: the
  // record serializes as "{...}", so splice past its opening brace.
  const std::string record = info.record.to_jsonl();
  std::string out = "{\"ok\":true,\"job\":" + std::to_string(info.id) + ",";
  out += record.substr(1);
  return out;
}

std::string cancel_response(std::uint64_t job, bool cancelled) {
  std::string out = "{\"ok\":true,\"job\":" + std::to_string(job);
  out += ",\"cancelled\":";
  out += cancelled ? "true" : "false";
  out += "}";
  return out;
}

std::string list_header_response(std::size_t count) {
  return "{\"ok\":true,\"count\":" + std::to_string(count) + "}";
}

std::string stats_response(const ServiceStats& stats) {
  std::string out = "{\"ok\":true";
  out += ",\"queued\":" + std::to_string(stats.queued);
  out += ",\"running\":" + std::to_string(stats.running);
  out += ",\"done\":" + std::to_string(stats.done);
  out += ",\"submitted\":" + std::to_string(stats.submitted);
  out += ",\"completed\":" + std::to_string(stats.completed);
  out += ",\"cancelled\":" + std::to_string(stats.cancelled);
  out += ",\"rejected\":" + std::to_string(stats.rejected);
  out += ",\"resumed\":" + std::to_string(stats.resumed);
  out += ",\"draining\":";
  out += stats.draining ? "true" : "false";
  out += ",\"cache_hits\":" + std::to_string(stats.cache.hits);
  out += ",\"cache_misses\":" + std::to_string(stats.cache.misses);
  out += ",\"cache_evictions\":" + std::to_string(stats.cache.evictions);
  out += ",\"cache_entries\":" + std::to_string(stats.cache.entries);
  out += ",\"cache_cost\":" + std::to_string(stats.cache.cost);
  out += ",\"cache_max_cost\":" + std::to_string(stats.cache.max_cost);
  out += "}";
  return out;
}

std::string ping_response() {
  std::string out = "{\"ok\":true,\"version\":";
  json::append_string(out, kVersion);
  out += "}";
  return out;
}

}  // namespace lsiq::service
