// Flow-as-a-service: the in-process core of the `lsiq_flowd` daemon.
//
// FlowService is the whole daemon minus the socket: an async job queue in
// front of the same per-spec unit of work the batch runner uses
// (flow::run_spec_with_retry), executed by worker lanes on a
// util::ThreadPool. Transport (src/service/server.hpp) is a thin layer on
// top, so every queue/cancel/evict behavior is testable in-process
// without a socket.
//
// The contracts, in the order they bite:
//
//   * Admission control — the queue is BOUNDED (ServiceOptions::
//     max_queue). A submit against a full queue throws
//     Error(kQueueFull) — transient by taxonomy, so a polite client
//     backs off and retries. A submit after drain()/shutdown() throws
//     Error(kShutdown) — permanent, the service never re-opens.
//   * Priority — higher `priority` runs first; ties run in submission
//     order. Priorities order the QUEUE only; running jobs are never
//     preempted.
//   * Cancellation — cancel() on a QUEUED job commits a structured
//     kCancelled record immediately (attempts 0, the job never ran); on
//     a RUNNING job it flips the job's cancel flag, which the worker's
//     util::CancelScope turns into a kCancelled record at the run's next
//     cooperative checkpoint. Both shapes land in the result store like
//     any other failure.
//   * Deadlines — a per-job deadline_ms (default from options) rides the
//     same BatchOptions watchdog the batch runner uses; overruns become
//     kDeadline records.
//   * Crash isolation — run_spec_with_retry never throws, and the
//     "service.job" failpoint at the lane boundary converts injected
//     errors into structured failure records; a poisoned job cannot take
//     a lane down.
//   * Durability — every completed record is appended to the JSONL
//     result store (flow::ResultStore, kAppend mode: the store is a
//     journal that survives daemon restarts; readers apply
//     last-record-per-spec). On submit, an unchanged-ok record from the
//     store satisfies the job instantly (resumed=true) — the daemon
//     equivalent of batch --resume.
//   * Bounded memory — the shared ArtifactCache is cost-bounded
//     (cache_max_cost) so a daemon that has seen thousands of products
//     holds only the hot set; stats() exposes hits/misses/evictions and
//     the live cost.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "flow/batch.hpp"
#include "util/thread_pool.hpp"

namespace lsiq::service {

struct ServiceOptions {
  /// Worker lanes (util::resolve_worker_count convention; 0 = one per
  /// hardware thread). Each lane runs one job at a time.
  std::size_t num_workers = 2;

  /// Admission bound: maximum QUEUED (not yet running) jobs. A submit
  /// beyond this throws Error(kQueueFull).
  std::size_t max_queue = 256;

  /// ArtifactCache cost bound (ArtifactCache::set_max_cost units:
  /// compiled node count). 0 = unbounded.
  std::size_t cache_max_cost = 0;

  /// JSONL result store, opened in APPEND mode; empty = no store (results
  /// live in memory only and nothing is resumable).
  std::string store_path;

  /// Satisfy a submit from an unchanged-ok store record instead of
  /// re-running it.
  bool resume = true;

  /// Directory where inline-submitted specs are spooled as
  /// `inline-<job>.spec` files; empty = current directory.
  std::string spool_dir;

  /// Per-job defaults, overridable per submit.
  flow::RetryPolicy retry;
  int default_deadline_ms = 0;
};

enum class JobState { kQueued, kRunning, kDone };

[[nodiscard]] const char* job_state_name(JobState state) noexcept;

/// A point-in-time snapshot of one job (status/list responses).
struct JobInfo {
  std::uint64_t id = 0;
  std::string spec;
  int priority = 0;
  JobState state = JobState::kQueued;
  bool resumed = false;
  /// Valid when state == kDone.
  flow::BatchRecord record;
};

/// A point-in-time snapshot of the whole service (the `stats` request).
struct ServiceStats {
  std::size_t queued = 0;
  std::size_t running = 0;
  std::size_t done = 0;
  std::size_t submitted = 0;   ///< admitted submits (resumed included)
  std::size_t completed = 0;   ///< records committed (cancelled included)
  std::size_t cancelled = 0;   ///< cancel() calls that took effect
  std::size_t rejected = 0;    ///< submits refused (queue_full + shutdown)
  std::size_t resumed = 0;     ///< submits satisfied from the store
  bool draining = false;
  flow::ArtifactCache::Stats cache;
};

class FlowService {
 public:
  explicit FlowService(ServiceOptions options);

  /// shutdown() + join. Queued jobs die as kCancelled records.
  ~FlowService();

  FlowService(const FlowService&) = delete;
  FlowService& operator=(const FlowService&) = delete;

  /// Admit one spec file. priority orders the queue (higher first);
  /// deadline_ms < 0 means options.default_deadline_ms. Returns the job
  /// id. Throws Error(kQueueFull) when the queue is at max_queue and
  /// Error(kShutdown) once draining.
  std::uint64_t submit(const std::string& spec_path, int priority = 0,
                       int deadline_ms = -1);

  /// Admit an inline spec: the text is spooled to
  /// `<spool_dir>/inline-<job>.spec` and the job runs that file (so the
  /// record's spec path names a real, re-runnable file). Throws IoError
  /// when the spool file cannot be written, plus everything submit()
  /// throws.
  std::uint64_t submit_inline(const std::string& spec_text, int priority = 0,
                              int deadline_ms = -1);

  /// Snapshot one job; nullopt for an unknown id.
  [[nodiscard]] std::optional<JobInfo> status(std::uint64_t id) const;

  /// Snapshot every job, in submission order.
  [[nodiscard]] std::vector<JobInfo> list() const;

  /// Request cancellation. Queued: the job completes NOW as a kCancelled
  /// record. Running: the job's flag is set and the record arrives when
  /// the run unwinds. Returns false (no effect) for done/unknown jobs.
  bool cancel(std::uint64_t id);

  [[nodiscard]] ServiceStats stats() const;

  /// Block until job `id` is done; returns its final snapshot. Throws
  /// Error(kNotFound) for an unknown id.
  JobInfo wait(std::uint64_t id);

  /// Stop admission (kShutdown from here on) and block until every
  /// admitted job has completed. Idempotent. Workers stay alive — call
  /// shutdown() (or destroy the service) to stop them.
  void drain();

  /// Stop admission, cancel every queued job (immediate kCancelled
  /// records), flag every running job, and join the worker lanes.
  /// Idempotent.
  void shutdown();

  [[nodiscard]] bool draining() const;

 private:
  struct Job {
    std::uint64_t id = 0;
    std::string spec;
    int priority = 0;
    int deadline_ms = 0;
    JobState state = JobState::kQueued;
    bool resumed = false;
    std::atomic<bool> cancel{false};
    flow::BatchRecord record;
  };

  /// Admission (caller holds mutex_ via the public entry points).
  std::uint64_t submit_locked(std::unique_lock<std::mutex>& lock,
                              const std::string& spec_path, int priority,
                              int deadline_ms);

  /// Commit a job's final record: state/store/counters/wakeups. Caller
  /// holds mutex_.
  void finish_locked(Job& job, flow::BatchRecord record);

  [[nodiscard]] JobInfo snapshot_locked(const Job& job) const;

  void worker_loop(std::size_t lane);

  ServiceOptions options_;
  flow::ArtifactCache cache_;
  std::unique_ptr<flow::ResultStore> store_;
  /// Last record per spec from the store at startup (resume source).
  std::map<std::string, flow::BatchRecord> resume_records_;

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;   ///< workers: queue or stop
  std::condition_variable job_done_;     ///< waiters: a job completed
  std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
  /// Queue order: (-priority, id) → job id. Higher priority first, FIFO
  /// within a priority.
  std::map<std::pair<int, std::uint64_t>, std::uint64_t> queue_;
  std::uint64_t next_id_ = 1;
  std::size_t running_count_ = 0;
  bool draining_ = false;
  bool stopping_ = false;

  std::size_t submitted_ = 0;
  std::size_t completed_ = 0;
  std::size_t cancelled_ = 0;
  std::size_t rejected_ = 0;
  std::size_t resumed_ = 0;

  /// The lanes. A dedicated pump thread hosts ThreadPool::run (which
  /// blocks until every lane returns); lanes exit when stopping_ is set
  /// and the queue is empty.
  util::ThreadPool pool_;
  std::thread pump_;
};

}  // namespace lsiq::service
