#include "service/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

#include "service/protocol.hpp"
#include "util/failpoint.hpp"

namespace lsiq::service {

namespace {

void write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a client that hung up mid-response must not SIGPIPE
    // the daemon; the failed send just ends this connection.
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string("socket write failed: ") +
                    std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

sockaddr_un make_address(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.size() >= sizeof address.sun_path) {
    throw IoError("socket path too long: " + path);
  }
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  return address;
}

}  // namespace

// ---- SocketServer ----

SocketServer::SocketServer(FlowService& service, std::string socket_path,
                           SocketServerOptions options)
    : service_(service),
      path_(std::move(socket_path)),
      options_(options),
      slots_(std::max<std::size_t>(options.max_connections, 1)) {
  for (std::atomic<int>& slot : slots_) slot.store(-1);
  const sockaddr_un address = make_address(path_);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw IoError(std::string("cannot create socket: ") +
                  std::strerror(errno));
  }
  ::unlink(path_.c_str());  // a stale socket file from a dead daemon
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof address) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("cannot listen on " + path_ + ": " + detail);
  }
}

SocketServer::~SocketServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::unlink(path_.c_str());
}

void SocketServer::stop() {
  stop_.store(true);
  // shutdown() unblocks a blocked accept(); close alone does not,
  // reliably, on all kernels. Connection shutdowns make every blocked
  // handler read see EOF. All of it is atomic loads/stores plus
  // shutdown(2), so a signal handler can call this safely.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  for (std::atomic<int>& slot : slots_) {
    const int fd = slot.load();
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
}

void SocketServer::serve() {
  while (!stop_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stop_.load()) break;
      std::unique_lock<std::mutex> lock(mutex_);
      idle_cv_.wait(lock, [this] { return active_ == 0; });
      throw IoError(std::string("accept failed: ") + std::strerror(errno));
    }
    try {
      LSIQ_FAILPOINT("service.accept");
    } catch (const std::exception&) {
      // An injected accept failure drops THIS client; the daemon keeps
      // serving.
      ::close(fd);
      continue;
    }

    // Claim a connection slot. No free slot means max_connections
    // handlers are in flight — refuse with a structured, parseable
    // error line instead of making this client queue behind (possibly
    // hung) peers.
    std::size_t slot = slots_.size();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (slots_[i].load() < 0) {
          slot = i;
          slots_[i].store(fd);
          ++active_;
          break;
        }
      }
    }
    if (slot == slots_.size()) {
      try {
        write_all(fd,
                  error_response(
                      ErrorCode::kQueueFull,
                      "connection limit reached (" +
                          std::to_string(slots_.size()) +
                          " active); retry shortly") +
                      "\n");
      } catch (const std::exception&) {
        // The refused client hung up first; nothing to tell it.
      }
      ::close(fd);
      continue;
    }
    std::thread(&SocketServer::run_connection, this, fd, slot).detach();
  }
  // Join in spirit: handlers are detached, so wait for every one to
  // release its slot before returning — after this the server object
  // can be destroyed safely.
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return active_ == 0; });
}

void SocketServer::run_connection(int fd, std::size_t slot) {
  bool keep_serving = true;
  try {
    keep_serving = handle_connection(fd);
  } catch (const std::exception&) {
    // A torn connection drops THIS client; the daemon keeps serving.
  }
  if (!keep_serving) stop();  // before the slot release: see below
  slots_[slot].store(-1);
  ::close(fd);
  // Last touch of the object: once active_ hits zero under the lock,
  // serve() may return and the server be destroyed, so the decrement
  // and notify must be the final statements of this thread.
  std::lock_guard<std::mutex> lock(mutex_);
  --active_;
  idle_cv_.notify_all();
}

bool SocketServer::handle_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  while (true) {
    if (options_.idle_timeout_ms > 0) {
      // The idle timer arms between reads, so a slow request stream is
      // fine; only silence past the bound trips it.
      pollfd poll_fd{};
      poll_fd.fd = fd;
      poll_fd.events = POLLIN;
      int ready;
      do {
        ready = ::poll(&poll_fd, 1,
                       static_cast<int>(options_.idle_timeout_ms));
      } while (ready < 0 && errno == EINTR);
      if (ready == 0) {
        // Structured refusal, not a hang: tell the idle client why it
        // is being cut off, then free the slot.
        write_all(fd, error_response(
                          ErrorCode::kDeadline,
                          "idle for over " +
                              std::to_string(options_.idle_timeout_ms) +
                              " ms; reconnect to continue") +
                          "\n");
        return true;
      }
      if (ready < 0) return true;  // torn connection: drop it
    }
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return true;  // torn connection: drop it, keep serving
    }
    if (n == 0) return true;  // client done
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.empty()) continue;
      std::string response;
      const bool keep_serving = handle_line(line, &response);
      write_all(fd, response);
      if (!keep_serving) return false;
    }
  }
}

bool SocketServer::handle_line(const std::string& line, std::string* out) {
  const std::optional<Request> request = parse_request(line);
  if (!request.has_value()) {
    *out += error_response(ErrorCode::kParse, "malformed request line");
    *out += '\n';
    return true;
  }
  try {
    if (request->op == "submit") {
      std::uint64_t id = 0;
      if (!request->spec.empty()) {
        id = service_.submit(request->spec, request->priority,
                             request->deadline_ms);
      } else if (!request->spec_text.empty()) {
        id = service_.submit_inline(request->spec_text, request->priority,
                                    request->deadline_ms);
      } else {
        *out += error_response(ErrorCode::kInvalidSpec,
                               "submit needs spec or spec_text");
        *out += '\n';
        return true;
      }
      // A resumed job is done before submit() returns, so report the
      // job's actual state, not an assumed "queued".
      const std::optional<JobInfo> info = service_.status(id);
      *out += submit_response(id, info.has_value() ? info->state
                                                   : JobState::kQueued);
      *out += '\n';
      return true;
    }
    if (request->op == "status" || request->op == "result" ||
        request->op == "cancel") {
      if (!request->has_job) {
        *out += error_response(ErrorCode::kParse,
                               request->op + " needs a job id");
        *out += '\n';
        return true;
      }
      const std::optional<JobInfo> info = service_.status(request->job);
      if (!info.has_value()) {
        *out += error_response(ErrorCode::kNotFound,
                               "no job with id " +
                                   std::to_string(request->job));
        *out += '\n';
        return true;
      }
      if (request->op == "status") {
        *out += job_response(*info);
      } else if (request->op == "result") {
        if (info->state != JobState::kDone) {
          *out += error_response(
              ErrorCode::kNotFound,
              "job " + std::to_string(request->job) + " is " +
                  job_state_name(info->state) + ", not finished");
        } else {
          *out += result_response(*info);
        }
      } else {
        *out += cancel_response(request->job, service_.cancel(request->job));
      }
      *out += '\n';
      return true;
    }
    if (request->op == "list") {
      const std::vector<JobInfo> jobs = service_.list();
      *out += list_header_response(jobs.size());
      *out += '\n';
      for (const JobInfo& info : jobs) {
        *out += job_response(info);
        *out += '\n';
      }
      return true;
    }
    if (request->op == "stats") {
      *out += stats_response(service_.stats());
      *out += '\n';
      return true;
    }
    if (request->op == "ping") {
      *out += ping_response();
      *out += '\n';
      return true;
    }
    if (request->op == "drain") {
      service_.drain();  // blocks until every admitted job is done
      *out += ok_response();
      *out += '\n';
      return false;
    }
    if (request->op == "shutdown") {
      service_.shutdown();
      *out += ok_response();
      *out += '\n';
      return false;
    }
    *out += error_response(ErrorCode::kParse, "unknown op: " + request->op);
    *out += '\n';
    return true;
  } catch (const Error& e) {
    *out += error_response(e.code(), e.what());
    *out += '\n';
    return true;
  } catch (const std::exception& e) {
    *out += error_response(ErrorCode::kUnknown, e.what());
    *out += '\n';
    return true;
  }
}

// ---- SocketClient ----

SocketClient::SocketClient(const std::string& socket_path) {
  const sockaddr_un address = make_address(socket_path);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw IoError(std::string("cannot create socket: ") +
                  std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&address),
                sizeof address) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw IoError("cannot connect to " + socket_path + ": " + detail);
  }
}

SocketClient::~SocketClient() {
  if (fd_ >= 0) ::close(fd_);
}

void SocketClient::send_line(const std::string& line) {
  write_all(fd_, line + "\n");
}

std::string SocketClient::read_line() {
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string("socket read failed: ") +
                    std::strerror(errno));
    }
    if (n == 0) {
      throw IoError("connection closed by server");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace lsiq::service
