#include "service/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "service/protocol.hpp"
#include "util/failpoint.hpp"

namespace lsiq::service {

namespace {

void write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a client that hung up mid-response must not SIGPIPE
    // the daemon; the failed send just ends this connection.
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string("socket write failed: ") +
                    std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

sockaddr_un make_address(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.size() >= sizeof address.sun_path) {
    throw IoError("socket path too long: " + path);
  }
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  return address;
}

}  // namespace

// ---- SocketServer ----

SocketServer::SocketServer(FlowService& service, std::string socket_path)
    : service_(service), path_(std::move(socket_path)) {
  const sockaddr_un address = make_address(path_);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw IoError(std::string("cannot create socket: ") +
                  std::strerror(errno));
  }
  ::unlink(path_.c_str());  // a stale socket file from a dead daemon
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof address) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("cannot listen on " + path_ + ": " + detail);
  }
}

SocketServer::~SocketServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::unlink(path_.c_str());
}

void SocketServer::stop() {
  stop_.store(true);
  // shutdown() unblocks a blocked accept(); close alone does not,
  // reliably, on all kernels.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

void SocketServer::serve() {
  while (!stop_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stop_.load()) return;
      throw IoError(std::string("accept failed: ") + std::strerror(errno));
    }
    bool keep_serving = true;
    try {
      LSIQ_FAILPOINT("service.accept");
      keep_serving = handle_connection(fd);
    } catch (const std::exception&) {
      // An injected accept failure or a torn connection drops THIS
      // client; the daemon keeps serving.
    }
    ::close(fd);
    if (!keep_serving) return;
  }
}

bool SocketServer::handle_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return true;  // torn connection: drop it, keep serving
    }
    if (n == 0) return true;  // client done
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.empty()) continue;
      std::string response;
      const bool keep_serving = handle_line(line, &response);
      write_all(fd, response);
      if (!keep_serving) return false;
    }
  }
}

bool SocketServer::handle_line(const std::string& line, std::string* out) {
  const std::optional<Request> request = parse_request(line);
  if (!request.has_value()) {
    *out += error_response(ErrorCode::kParse, "malformed request line");
    *out += '\n';
    return true;
  }
  try {
    if (request->op == "submit") {
      std::uint64_t id = 0;
      if (!request->spec.empty()) {
        id = service_.submit(request->spec, request->priority,
                             request->deadline_ms);
      } else if (!request->spec_text.empty()) {
        id = service_.submit_inline(request->spec_text, request->priority,
                                    request->deadline_ms);
      } else {
        *out += error_response(ErrorCode::kInvalidSpec,
                               "submit needs spec or spec_text");
        *out += '\n';
        return true;
      }
      // A resumed job is done before submit() returns, so report the
      // job's actual state, not an assumed "queued".
      const std::optional<JobInfo> info = service_.status(id);
      *out += submit_response(id, info.has_value() ? info->state
                                                   : JobState::kQueued);
      *out += '\n';
      return true;
    }
    if (request->op == "status" || request->op == "result" ||
        request->op == "cancel") {
      if (!request->has_job) {
        *out += error_response(ErrorCode::kParse,
                               request->op + " needs a job id");
        *out += '\n';
        return true;
      }
      const std::optional<JobInfo> info = service_.status(request->job);
      if (!info.has_value()) {
        *out += error_response(ErrorCode::kNotFound,
                               "no job with id " +
                                   std::to_string(request->job));
        *out += '\n';
        return true;
      }
      if (request->op == "status") {
        *out += job_response(*info);
      } else if (request->op == "result") {
        if (info->state != JobState::kDone) {
          *out += error_response(
              ErrorCode::kNotFound,
              "job " + std::to_string(request->job) + " is " +
                  job_state_name(info->state) + ", not finished");
        } else {
          *out += result_response(*info);
        }
      } else {
        *out += cancel_response(request->job, service_.cancel(request->job));
      }
      *out += '\n';
      return true;
    }
    if (request->op == "list") {
      const std::vector<JobInfo> jobs = service_.list();
      *out += list_header_response(jobs.size());
      *out += '\n';
      for (const JobInfo& info : jobs) {
        *out += job_response(info);
        *out += '\n';
      }
      return true;
    }
    if (request->op == "stats") {
      *out += stats_response(service_.stats());
      *out += '\n';
      return true;
    }
    if (request->op == "ping") {
      *out += ping_response();
      *out += '\n';
      return true;
    }
    if (request->op == "drain") {
      service_.drain();  // blocks until every admitted job is done
      *out += ok_response();
      *out += '\n';
      return false;
    }
    if (request->op == "shutdown") {
      service_.shutdown();
      *out += ok_response();
      *out += '\n';
      return false;
    }
    *out += error_response(ErrorCode::kParse, "unknown op: " + request->op);
    *out += '\n';
    return true;
  } catch (const Error& e) {
    *out += error_response(e.code(), e.what());
    *out += '\n';
    return true;
  } catch (const std::exception& e) {
    *out += error_response(ErrorCode::kUnknown, e.what());
    *out += '\n';
    return true;
  }
}

// ---- SocketClient ----

SocketClient::SocketClient(const std::string& socket_path) {
  const sockaddr_un address = make_address(socket_path);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw IoError(std::string("cannot create socket: ") +
                  std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&address),
                sizeof address) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw IoError("cannot connect to " + socket_path + ": " + detail);
  }
}

SocketClient::~SocketClient() {
  if (fd_ >= 0) ::close(fd_);
}

void SocketClient::send_line(const std::string& line) {
  write_all(fd_, line + "\n");
}

std::string SocketClient::read_line() {
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string("socket read failed: ") +
                    std::strerror(errno));
    }
    if (n == 0) {
      throw IoError("connection closed by server");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace lsiq::service
