// UNIX-domain socket transport for the flow service.
//
// SocketServer owns the listening socket of one FlowService and serves
// each accepted connection on its own thread, bounded by
// SocketServerOptions::max_connections. Per-connection threads exist for
// *isolation*, not throughput — every request except drain is
// sub-millisecond (job execution is async on the service's worker
// lanes), but a client that connects and then stalls mid-line used to
// wedge the old sequential accept loop for every other client. Now a
// stalled client costs one bounded slot:
//
//   - Over the max_connections bound, a new connection is refused with a
//     structured queue_full error line and closed — a parseable refusal,
//     never a silent hang behind a hung peer.
//   - With idle_timeout_ms set, a connection that sends nothing for that
//     long is answered with a structured deadline error line and closed
//     (the poll(2)-based timer arms between requests, so a slow *stream*
//     of requests is fine; only silence trips it).
//
// The loop exits after answering a drain/shutdown request (drain
// finishes the queue first, shutdown cancels it) and joins every
// in-flight connection before serve() returns. FlowService is itself
// thread-safe, so concurrent request handlers need no extra locking.
//
// The "service.accept" failpoint fires right after accept(): an injected
// error drops that connection (client sees EOF) and the loop continues —
// how CI proves a misbehaving client cannot take the daemon down.
//
// SocketClient is the matching blocking client (used by lsiq_flow's
// client mode and the tests): connect, send_line, read_line.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "service/service.hpp"

namespace lsiq::service {

struct SocketServerOptions {
  /// Concurrent-connection bound; connection max_connections + 1 gets a
  /// structured queue_full refusal instead of queueing behind the rest.
  std::size_t max_connections = 8;

  /// Per-connection idle read timeout in milliseconds; 0 = wait forever.
  /// A connection idle past the bound is answered with a structured
  /// deadline error and closed, freeing its slot.
  std::size_t idle_timeout_ms = 0;
};

class SocketServer {
 public:
  /// Binds and listens on `socket_path` (unlinking a stale socket file
  /// first). Throws IoError when the socket cannot be created or bound.
  SocketServer(FlowService& service, std::string socket_path,
               SocketServerOptions options = {});

  /// Closes the listening socket and unlinks the socket file.
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Accept-and-serve until a drain or shutdown request has been
  /// answered (or stop() is called), then join every in-flight
  /// connection. drain finishes the queue before the loop exits;
  /// shutdown cancels it.
  void serve();

  /// Unblock serve() from another thread. Async-signal-safe (atomic
  /// stores plus shutdown(2) calls — signal handlers route here): it
  /// shuts down the listening socket and every active connection, so
  /// blocked reads see EOF and their handler threads wind down.
  void stop();

  [[nodiscard]] const std::string& socket_path() const noexcept {
    return path_;
  }

 private:
  /// Handler-thread body: serve the connection, release its slot, and
  /// trigger loop exit after a drain/shutdown answer.
  void run_connection(int fd, std::size_t slot);

  /// Serve one connection; returns false when the loop should exit.
  bool handle_connection(int fd);

  /// Answer one request line; appends response lines to `out` and
  /// returns false when the loop should exit after responding.
  bool handle_line(const std::string& line, std::string* out);

  FlowService& service_;
  std::string path_;
  SocketServerOptions options_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};

  /// One slot per admissible connection, holding its fd (-1 = free).
  /// Atomics so stop() can shut every active fd down from a signal
  /// handler without taking a lock.
  std::vector<std::atomic<int>> slots_;

  /// serve() waits for this to reach zero before returning, so no
  /// handler thread outlives the server object.
  std::size_t active_ = 0;
  std::mutex mutex_;
  std::condition_variable idle_cv_;
};

class SocketClient {
 public:
  /// Connects to a SocketServer; throws IoError when the socket is
  /// missing or refuses.
  explicit SocketClient(const std::string& socket_path);
  ~SocketClient();

  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  /// Send one request line ('\n' appended). Throws IoError on failure.
  void send_line(const std::string& line);

  /// Read one response line. Throws IoError on EOF / failure — the
  /// server always answers a well-formed request, so EOF mid-exchange
  /// means the connection was dropped.
  std::string read_line();

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace lsiq::service
