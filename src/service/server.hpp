// UNIX-domain socket transport for the flow service.
//
// SocketServer owns the listening socket of one FlowService and runs a
// sequential accept loop: connections are served one at a time, each
// connection may carry any number of newline-delimited requests, and the
// loop exits after answering a drain/shutdown request. Sequential is a
// feature, not a shortcut — every request except drain is sub-millisecond
// (job execution is async on the service's worker lanes), so there is
// nothing to parallelize, and one thread means no transport-level
// interleaving to reason about. Clients that wait for a job poll `status`
// over short-lived connections, which keeps `cancel` from another
// terminal responsive while they wait.
//
// The "service.accept" failpoint fires right after accept(): an injected
// error drops that connection (client sees EOF) and the loop continues —
// how CI proves a misbehaving client cannot take the daemon down.
//
// SocketClient is the matching blocking client (used by lsiq_flow's
// client mode and the tests): connect, send_line, read_line.
#pragma once

#include <atomic>
#include <string>

#include "service/service.hpp"

namespace lsiq::service {

class SocketServer {
 public:
  /// Binds and listens on `socket_path` (unlinking a stale socket file
  /// first). Throws IoError when the socket cannot be created or bound.
  SocketServer(FlowService& service, std::string socket_path);

  /// Closes the listening socket and unlinks the socket file.
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Accept-and-serve until a drain or shutdown request has been
  /// answered (or stop() is called). drain finishes the queue before the
  /// loop exits; shutdown cancels it.
  void serve();

  /// Unblock serve() from another thread (signal handlers route here).
  void stop();

  [[nodiscard]] const std::string& socket_path() const noexcept {
    return path_;
  }

 private:
  /// Serve one connection; returns false when the loop should exit.
  bool handle_connection(int fd);

  /// Answer one request line; appends response lines to `out` and
  /// returns false when the loop should exit after responding.
  bool handle_line(const std::string& line, std::string* out);

  FlowService& service_;
  std::string path_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
};

class SocketClient {
 public:
  /// Connects to a SocketServer; throws IoError when the socket is
  /// missing or refuses.
  explicit SocketClient(const std::string& socket_path);
  ~SocketClient();

  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  /// Send one request line ('\n' appended). Throws IoError on failure.
  void send_line(const std::string& line);

  /// Read one response line. Throws IoError on EOF / failure — the
  /// server always answers a well-formed request, so EOF mid-exchange
  /// means the connection was dropped.
  std::string read_line();

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace lsiq::service
