#include "service/service.hpp"

#include <filesystem>
#include <fstream>
#include <iostream>
#include <utility>

#include "util/deadline.hpp"
#include "util/failpoint.hpp"

namespace lsiq::service {

namespace {

/// A structured failure record for a job that never reached (or never
/// returned from) run_spec_with_retry: a cancelled queued job, or an
/// error injected at the "service.job" lane boundary.
flow::BatchRecord failure_record(const std::string& spec, ErrorCode code,
                                 const std::string& message, int attempts) {
  flow::BatchRecord record;
  record.spec = spec;
  record.hash = flow::hash_spec_file(spec);
  record.status = "failed";
  record.error_code = code;
  record.transient = is_transient(code);
  record.attempts = attempts;
  record.error = message;
  return record;
}

}  // namespace

const char* job_state_name(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
  }
  return "unknown";
}

FlowService::FlowService(ServiceOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_max_cost),
      pool_(util::resolve_worker_count(options_.num_workers)) {
  if (!options_.store_path.empty()) {
    if (options_.resume) {
      resume_records_ = flow::load_result_store(options_.store_path);
    }
    store_ = std::make_unique<flow::ResultStore>(
        options_.store_path, nullptr, flow::ResultStore::Mode::kAppend);
  }
  pump_ = std::thread([this] {
    try {
      pool_.run([this](std::size_t lane) { worker_loop(lane); });
    } catch (const std::exception& e) {
      // Lanes are designed not to throw; a stray exception here means a
      // store write failed after retries. The daemon stays up — jobs it
      // can still serve, it should.
      std::cerr << "lsiq_flowd: worker pool error: " << e.what() << "\n";
    }
  });
}

FlowService::~FlowService() { shutdown(); }

std::uint64_t FlowService::submit(const std::string& spec_path, int priority,
                                  int deadline_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  return submit_locked(lock, spec_path, priority, deadline_ms);
}

std::uint64_t FlowService::submit_inline(const std::string& spec_text,
                                         int priority, int deadline_ms) {
  namespace fs = std::filesystem;
  std::unique_lock<std::mutex> lock(mutex_);
  // Admission is checked BEFORE spooling so a refused submit leaves no
  // file behind; submit_locked re-checks under the same lock.
  if (draining_ || stopping_) {
    ++rejected_;
    throw Error("flow service is draining; submission refused",
                ErrorCode::kShutdown);
  }
  if (queue_.size() >= options_.max_queue) {
    ++rejected_;
    throw Error("flow service job queue is full", ErrorCode::kQueueFull);
  }
  const fs::path dir(options_.spool_dir.empty() ? "." : options_.spool_dir);
  const std::string path =
      (dir / ("inline-" + std::to_string(next_id_) + ".spec")).string();
  {
    std::ofstream out(path, std::ios::trunc);
    out << spec_text;
    if (!out) {
      throw IoError("cannot spool inline spec: " + path);
    }
  }
  return submit_locked(lock, path, priority, deadline_ms);
}

std::uint64_t FlowService::submit_locked(std::unique_lock<std::mutex>& lock,
                                         const std::string& spec_path,
                                         int priority, int deadline_ms) {
  (void)lock;
  if (draining_ || stopping_) {
    ++rejected_;
    throw Error("flow service is draining; submission refused",
                ErrorCode::kShutdown);
  }
  if (queue_.size() >= options_.max_queue) {
    ++rejected_;
    throw Error("flow service job queue is full", ErrorCode::kQueueFull);
  }
  const std::uint64_t id = next_id_++;
  auto job = std::make_unique<Job>();
  job->id = id;
  job->spec = spec_path;
  job->priority = priority;
  job->deadline_ms =
      deadline_ms >= 0 ? deadline_ms : options_.default_deadline_ms;
  Job& slot = *jobs_.emplace(id, std::move(job)).first->second;
  ++submitted_;

  // Resume: an unchanged-ok record from the store satisfies the job
  // without running it — the daemon twin of `--batch --resume`.
  if (options_.resume) {
    const auto it = resume_records_.find(spec_path);
    if (it != resume_records_.end() && it->second.status == "ok" &&
        it->second.hash != 0 &&
        it->second.hash == flow::hash_spec_file(spec_path)) {
      ++resumed_;
      slot.resumed = true;
      finish_locked(slot, it->second);
      return id;
    }
  }

  queue_.emplace(std::make_pair(-priority, id), id);
  work_ready_.notify_one();
  return id;
}

void FlowService::finish_locked(Job& job, flow::BatchRecord record) {
  record.resumed = job.resumed;
  job.record = std::move(record);
  job.state = JobState::kDone;
  ++completed_;
  if (store_ != nullptr) {
    try {
      store_->append(job.record);
    } catch (const std::exception& e) {
      // The batch runner aborts on a store write failure; a daemon has
      // nothing to abort INTO, so it degrades to in-memory results and
      // says so once per failure.
      std::cerr << "lsiq_flowd: result store write failed: " << e.what()
                << "\n";
    }
  }
  job_done_.notify_all();
}

JobInfo FlowService::snapshot_locked(const Job& job) const {
  JobInfo info;
  info.id = job.id;
  info.spec = job.spec;
  info.priority = job.priority;
  info.state = job.state;
  info.resumed = job.resumed;
  if (job.state == JobState::kDone) info.record = job.record;
  return info;
}

std::optional<JobInfo> FlowService::status(std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return snapshot_locked(*it->second);
}

std::vector<JobInfo> FlowService::list() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JobInfo> jobs;
  jobs.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) {
    jobs.push_back(snapshot_locked(*job));
  }
  return jobs;
}

bool FlowService::cancel(std::uint64_t id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  Job& job = *it->second;
  if (job.state == JobState::kQueued) {
    queue_.erase(std::make_pair(-job.priority, job.id));
    ++cancelled_;
    finish_locked(job, failure_record(job.spec, ErrorCode::kCancelled,
                                      "cancelled before start",
                                      /*attempts=*/0));
    return true;
  }
  if (job.state == JobState::kRunning) {
    ++cancelled_;
    job.cancel.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;  // already done: nothing to cancel
}

ServiceStats FlowService::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  ServiceStats stats;
  stats.queued = queue_.size();
  stats.running = running_count_;
  stats.done = completed_;
  stats.submitted = submitted_;
  stats.completed = completed_;
  stats.cancelled = cancelled_;
  stats.rejected = rejected_;
  stats.resumed = resumed_;
  stats.draining = draining_ || stopping_;
  stats.cache = cache_.stats();
  return stats;
}

JobInfo FlowService::wait(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    throw Error("no job with id " + std::to_string(id), ErrorCode::kNotFound);
  }
  Job& job = *it->second;
  job_done_.wait(lock, [&] { return job.state == JobState::kDone; });
  return snapshot_locked(job);
}

void FlowService::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  draining_ = true;
  job_done_.wait(lock,
                 [&] { return queue_.empty() && running_count_ == 0; });
}

void FlowService::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
    while (!queue_.empty()) {
      const auto it = queue_.begin();
      Job& job = *jobs_.at(it->second);
      queue_.erase(it);
      ++cancelled_;
      finish_locked(job, failure_record(job.spec, ErrorCode::kCancelled,
                                        "cancelled by shutdown",
                                        /*attempts=*/0));
    }
    for (auto& [id, job] : jobs_) {
      if (job->state == JobState::kRunning) {
        job->cancel.store(true, std::memory_order_relaxed);
      }
    }
    stopping_ = true;
    work_ready_.notify_all();
  }
  if (pump_.joinable()) pump_.join();
}

bool FlowService::draining() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return draining_ || stopping_;
}

void FlowService::worker_loop(std::size_t /*lane*/) {
  while (true) {
    std::unique_lock<std::mutex> lock(mutex_);
    work_ready_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    const auto it = queue_.begin();
    Job& job = *jobs_.at(it->second);
    queue_.erase(it);
    job.state = JobState::kRunning;
    ++running_count_;
    flow::BatchOptions job_options;
    job_options.retry = options_.retry;
    job_options.deadline_ms = job.deadline_ms;
    lock.unlock();

    // The per-job isolation boundary. run_spec_with_retry never throws;
    // the catches convert a "service.job" injection (or a cancel that
    // lands at that checkpoint) into a structured record, so nothing a
    // job does can take the lane down.
    flow::BatchRecord record;
    try {
      const util::CancelScope cancel_scope(job.cancel);
      LSIQ_FAILPOINT("service.job");
      record = flow::run_spec_with_retry(job.spec, cache_, job_options);
    } catch (const Error& e) {
      record = failure_record(job.spec, e.code(), e.what(), /*attempts=*/1);
    } catch (const std::exception& e) {
      record = failure_record(job.spec, ErrorCode::kUnknown, e.what(),
                              /*attempts=*/1);
    } catch (...) {
      record = failure_record(job.spec, ErrorCode::kUnknown,
                              "non-standard exception", /*attempts=*/1);
    }

    lock.lock();
    --running_count_;
    finish_locked(job, std::move(record));
  }
}

}  // namespace lsiq::service
