// The lsiq_flowd wire protocol: line-delimited flat JSON over a UNIX
// socket.
//
// One request = one line = one flat JSON object (util/json.hpp); the
// server answers with one or more lines and is then ready for the next
// request on the same connection. Responses always carry an "ok" boolean;
// failures add "error_code" (a stable util/error.hpp name), "transient"
// and "error" text, so a client can triage a refusal — queue_full is
// worth a backoff-retry, shutdown is not — without parsing prose.
//
// Requests (field table in README.md "Flow service"):
//
//   {"op":"submit","spec":PATH[,"priority":N][,"deadline_ms":N]}
//   {"op":"submit","spec_text":TEXT[,...]}       inline spec, spooled
//   {"op":"status","job":N}
//   {"op":"result","job":N}                      full record of a done job
//   {"op":"cancel","job":N}
//   {"op":"list"}                                header + one line per job
//   {"op":"stats"}
//   {"op":"ping"}
//   {"op":"drain"}                               finish queue, then exit
//   {"op":"shutdown"}                            cancel queue, then exit
//
// This header is shared by the server (src/service/server.cpp) and the
// client mode of tools/lsiq_flow, so the two cannot drift.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "flow/batch.hpp"
#include "service/service.hpp"
#include "util/error.hpp"

namespace lsiq::service {

/// One parsed request line. Exactly one of the op-specific field groups
/// is meaningful, keyed by `op`.
struct Request {
  std::string op;
  std::string spec;       ///< submit: spec file path
  std::string spec_text;  ///< submit: inline spec body (spooled by server)
  int priority = 0;
  int deadline_ms = -1;   ///< -1 = server default
  std::uint64_t job = 0;
  bool has_job = false;
};

/// Serialize a request as one wire line ('\n' not included).
[[nodiscard]] std::string format_request(const Request& request);

/// Parse one wire line; nullopt when the line is not a flat JSON object
/// or has no string "op" field. (Unknown ops parse fine — the server
/// rejects them with an error RESPONSE, which is kinder to a newer
/// client than a dropped connection.)
[[nodiscard]] std::optional<Request> parse_request(const std::string& line);

// ---- response builders (one line each, '\n' not included) ----

[[nodiscard]] std::string ok_response();

/// {"ok":false,"error_code":...,"transient":...,"error":...}
[[nodiscard]] std::string error_response(ErrorCode code,
                                         const std::string& message);

/// submit: {"ok":true,"job":N,"state":...}
[[nodiscard]] std::string submit_response(std::uint64_t job, JobState state);

/// status/list body: {"ok":true,"job":N,"spec":...,"state":...,
/// "priority":N[,"result":...,"error_code":...]}
[[nodiscard]] std::string job_response(const JobInfo& info);

/// result: {"ok":true,"job":N, <every BatchRecord field>}
[[nodiscard]] std::string result_response(const JobInfo& info);

/// cancel: {"ok":true,"job":N,"cancelled":bool}
[[nodiscard]] std::string cancel_response(std::uint64_t job, bool cancelled);

/// list header: {"ok":true,"count":N}
[[nodiscard]] std::string list_header_response(std::size_t count);

/// stats: {"ok":true,"queued":...,...,"cache_evictions":...}
[[nodiscard]] std::string stats_response(const ServiceStats& stats);

/// ping: {"ok":true,"version":...}
[[nodiscard]] std::string ping_response();

}  // namespace lsiq::service
