// Logic-BIST session: LFSR pattern generation, MISR response compaction,
// and exact signature-aliasing fault grading.
//
// The paper's quality model assumes the tester observes every output on
// every pattern; BIST observes ONE k-bit signature per session. This
// module measures what that costs. A session runs the configured LFSR
// program through the compiled parallel-pattern simulator, folds the
// good-machine responses into the reference signature, and grades every
// collapsed fault class two ways:
//
//   * raw (full observation)  — some pattern makes some observed point
//     differ: what simulate_ppsfp would report for the same patterns;
//   * signature-detected      — the fault's end-of-session MISR signature
//     differs from the good one.
//
// The gap between the two is the exact aliasing loss: errors cancelling
// in space (two error bits entering one MISR stage in the same cycle) or
// in time (the register's linear recurrence folding an error history back
// onto the good signature). Because the MISR is linear over GF(2), each
// fault is graded by evolving the signature *difference* with the
// fault's per-point error words as input — zero state and zero errors
// short-circuit, so undetected faults cost almost nothing beyond their
// propagation check. The result feeds fault::CoverageCurve and the
// quality stack (core::QualityAnalyzer), which turns the aliasing loss
// into a DPPM statement à la Figures 1-4.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bist/misr.hpp"
#include "bist/result.hpp"
#include "circuit/compiled.hpp"
#include "fault/fault_list.hpp"
#include "sim/pattern.hpp"

namespace lsiq::bist {

struct BistConfig {
  /// LFSR patterns applied per session (ignored — and overwritten with the
  /// actual program length — when the session is given an explicit pattern
  /// set, so config().pattern_count always matches patterns().size()).
  std::size_t pattern_count = 1024;
  /// Pattern-generator register (see tpg::Lfsr widths) and seed.
  int lfsr_width = 32;
  std::uint64_t lfsr_seed = 1;
  /// Signature register: width k sets the 2^-k aliasing regime; taps 0
  /// selects the standard polynomial for the width (see bist::Misr).
  int misr_width = 32;
  std::uint64_t misr_taps = 0;
  /// Grading worker threads (always a util::ThreadPool, even for 1),
  /// following the shared util::resolve_worker_count convention: 0 = one
  /// per hardware thread, n = exactly n. Every value produces
  /// bit-identical results (each fault class is owned by exactly one
  /// lane; nothing is reduced across lanes).
  std::size_t num_threads = 1;

  /// When non-null, a compiled view of the session's circuit to share
  /// instead of recompiling at construction (the batch runner's artifact
  /// cache). Must match the FaultList's circuit.
  std::shared_ptr<const circuit::CompiledCircuit> compiled;
};

/// One configured BIST session over a fault universe. Compiles the
/// circuit and generates the LFSR program at construction; run() grades
/// it. The FaultList (and its Circuit) must outlive the session.
class BistSession {
 public:
  BistSession(const fault::FaultList& faults, BistConfig config);

  /// A session over an explicit pattern program instead of the config's
  /// LFSR: the MISR observation decoupled from the pattern source (any
  /// flow::PatternSourceSpec — ATPG sets, pattern files — can feed a
  /// signature tester). The config's LFSR fields are ignored and its
  /// pattern_count is overwritten with patterns.size(), so the session's
  /// accounting cannot drift from the program actually applied.
  BistSession(const fault::FaultList& faults, sim::PatternSet patterns,
              BistConfig config);

  [[nodiscard]] const BistConfig& config() const noexcept { return config_; }
  [[nodiscard]] const sim::PatternSet& patterns() const noexcept {
    return patterns_;
  }

  /// Grade the session with config().num_threads workers.
  [[nodiscard]] BistResult run() const;

  /// Same session, explicit worker count (bit-identical for any value).
  [[nodiscard]] BistResult run(std::size_t num_threads) const;

 private:
  const fault::FaultList* faults_;
  BistConfig config_;
  std::shared_ptr<const circuit::CompiledCircuit> compiled_;
  sim::PatternSet patterns_;
};

}  // namespace lsiq::bist
