#include "bist/session.hpp"

#include <algorithm>
#include <bit>

#include "fault/fault_sim.hpp"
#include "sim/parallel_sim.hpp"
#include "tpg/lfsr.hpp"
#include "util/deadline.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace lsiq::bist {

using circuit::CompiledCircuit;
using circuit::GateId;

namespace {

/// Class weights for curve construction.
std::vector<std::size_t> class_weights(const fault::FaultList& faults) {
  std::vector<std::size_t> weights(faults.class_count());
  for (std::size_t c = 0; c < weights.size(); ++c) {
    weights[c] = faults.class_size(c);
  }
  return weights;
}

/// Grading order: every class, sorted by non-increasing fault-site level
/// (ties in class order) — the resimulation fast path, same rationale as
/// the PPSFP engines. No fault dropping here: aliasing is a property of
/// the whole error history, so every class is graded on every block.
std::vector<std::uint32_t> grading_order(const fault::FaultList& faults,
                                         const CompiledCircuit& compiled) {
  std::vector<std::uint32_t> order(faults.class_count());
  for (std::size_t c = 0; c < order.size(); ++c) {
    order[c] = static_cast<std::uint32_t>(c);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return compiled.level(faults.representatives()[a].gate) >
                            compiled.level(faults.representatives()[b].gate);
                   });
  return order;
}

}  // namespace

double BistResult::measured_aliasing_fraction() const noexcept {
  if (raw_detected_classes == 0) return 0.0;
  return static_cast<double>(aliased_classes.size()) /
         static_cast<double>(raw_detected_classes);
}

fault::CoverageCurve BistResult::raw_curve(
    const fault::FaultList& faults) const {
  return fault::CoverageCurve::from_first_detection(
      first_error_pattern, class_weights(faults), faults.fault_count(),
      pattern_count);
}

fault::CoverageCurve BistResult::signature_curve(
    const fault::FaultList& faults) const {
  return fault::CoverageCurve::from_first_detection(
      first_divergence_pattern, class_weights(faults), faults.fault_count(),
      pattern_count);
}

namespace {

/// The config's shared compiled view when given (the batch artifact
/// cache), a private compilation otherwise.
std::shared_ptr<const CompiledCircuit> session_compiled(
    const BistConfig& config, const circuit::Circuit& circuit) {
  if (config.compiled != nullptr) {
    LSIQ_EXPECT(config.compiled->node_count() == circuit.gate_count(),
                "BistSession: config.compiled does not match the circuit");
    return config.compiled;
  }
  return std::make_shared<const CompiledCircuit>(circuit);
}

}  // namespace

BistSession::BistSession(const fault::FaultList& faults, BistConfig config)
    : faults_(&faults),
      config_(config),
      compiled_(session_compiled(config, faults.circuit())),
      patterns_(tpg::lfsr_patterns(faults.circuit().pattern_inputs().size(),
                                   config.pattern_count, config.lfsr_seed,
                                   config.lfsr_width)) {
  LSIQ_EXPECT(config.pattern_count > 0,
              "BistSession: pattern_count must be > 0");
  // Validate the MISR parameters up front, not at run() time.
  (void)Misr(config_.misr_width, config_.misr_taps);
}

BistSession::BistSession(const fault::FaultList& faults,
                         sim::PatternSet patterns, BistConfig config)
    : faults_(&faults),
      config_(config),
      compiled_(session_compiled(config, faults.circuit())),
      patterns_(std::move(patterns)) {
  LSIQ_EXPECT(!patterns_.empty(),
              "BistSession: explicit pattern set must be non-empty");
  LSIQ_EXPECT(patterns_.input_count() ==
                  faults.circuit().pattern_inputs().size(),
              "BistSession: pattern set input count does not match the "
              "circuit");
  config_.pattern_count = patterns_.size();
  (void)Misr(config_.misr_width, config_.misr_taps);
}

BistResult BistSession::run() const { return run(config_.num_threads); }

BistResult BistSession::run(std::size_t num_threads) const {
  const fault::FaultList& faults = *faults_;
  const CompiledCircuit& c = *compiled_;
  const std::vector<GateId>& points = c.observed_points();
  const std::size_t point_count = points.size();
  const Misr misr(config_.misr_width, config_.misr_taps);

  const std::size_t block_count = patterns_.block_count();
  const auto lanes_in_block = [&](std::size_t b) {
    return std::min<std::size_t>(64, patterns_.size() - b * 64);
  };

  // Per-class grading state. The MISR is linear, so each class carries
  // only the signature DIFFERENCE delta = good xor faulty, driven by the
  // class's error bits: delta stays zero until the first error, and the
  // class ends signature-detected iff delta != 0 after the last pattern.
  const std::size_t classes = faults.class_count();
  std::vector<std::uint64_t> delta(classes, 0);
  std::vector<std::int64_t> first_error(classes, -1);
  std::vector<std::int64_t> first_divergence(classes, -1);

  const std::vector<std::uint32_t> order = grading_order(faults, c);

  util::ThreadPool pool(num_threads);
  const std::size_t lanes = pool.size();
  std::vector<fault::Propagator> propagators;
  propagators.reserve(lanes);
  for (std::size_t t = 0; t < lanes; ++t) {
    propagators.emplace_back(compiled_);
  }
  std::vector<std::vector<std::uint64_t>> lane_diffs(lanes);

  // Transition universes gate every per-point error word with the fault
  // line's launch mask (see fault_model/transition.hpp): a slow line only
  // corrupts the response stream on capture patterns whose predecessor
  // launched the transition; everywhere else the faulty chip's outputs —
  // and hence its signature input — match the good machine. The window is
  // advanced on the main thread between blocks and read-only in the lanes.
  const bool transition =
      faults.model() == fault_model::FaultModel::kTransition;
  fault_model::TwoPatternWindow window(transition ? c.node_count() : 0);

  // Streamed, block-outer, fault-inner, strided across lanes like
  // simulate_ppsfp_mt: each block is simulated once, folded into the
  // reference signature, and graded while its values are live — session
  // memory is O(node_count), independent of session length. Each class
  // index is owned by one lane for the whole session (the stride mapping
  // never changes — no dropping), so every delta / first_* slot has a
  // single writer and the result is bit-identical for any worker count.
  sim::ParallelSimulator good_sim(compiled_);
  Misr reference = misr;
  for (std::size_t b = 0; b < block_count; ++b) {
    // Cooperative watchdog checkpoint, once per block (free when no
    // deadline is active).
    util::poll_deadline();
    good_sim.simulate_block(patterns_.block_words(b));
    const std::vector<std::uint64_t>& good = good_sim.values();
    const std::size_t valid = lanes_in_block(b);
    const std::uint64_t block_mask = patterns_.block_mask(b);
    const std::int64_t base = static_cast<std::int64_t>(b) * 64;

    for (std::size_t p = 0; p < valid; ++p) {
      std::uint64_t compacted = 0;
      for (std::size_t i = 0; i < point_count; ++i) {
        if ((good[points[i]] >> p) & 1ULL) compacted ^= misr.input_bit(i);
      }
      reference.step(compacted);
    }

    pool.run([&](std::size_t lane) {
      if (lane >= order.size()) return;
      fault::Propagator& propagator = propagators[lane];
      propagator.begin_block(good);
      std::vector<std::uint64_t>& diffs = lane_diffs[lane];
      for (std::size_t i = lane; i < order.size(); i += lanes) {
        const std::uint32_t cls = order[i];
        const fault::Fault& rep = faults.representatives()[cls];
        // Lanes without a launch see good outputs, so a zero launch mask
        // makes the whole block error-free without any propagation (the
        // same short-circuit detect_word_transition performs); the
        // evolution loop below reads diffs[] only where a detect bit
        // survives, so gating the OR word is gating every point.
        const std::uint64_t launch =
            transition ? window.launch_mask(fault_line(c, rep),
                                            rep.stuck_at_one, good.data())
                       : ~0ULL;
        const std::uint64_t detect =
            launch == 0
                ? 0
                : propagator.point_diff_words(rep, good, diffs) & launch;
        std::uint64_t d = delta[cls];
        if (d == 0 && detect == 0) continue;  // difference stays zero

        for (std::size_t p = 0; p < valid; ++p) {
          std::uint64_t compacted = 0;
          if ((detect >> p) & 1ULL) {
            for (std::size_t j = 0; j < point_count; ++j) {
              if ((diffs[j] >> p) & 1ULL) compacted ^= misr.input_bit(j);
            }
          }
          d = misr.next(d, compacted);
          if (d != 0 && first_divergence[cls] < 0) {
            first_divergence[cls] = base + static_cast<std::int64_t>(p);
          }
        }
        delta[cls] = d;

        const std::uint64_t masked = detect & block_mask;
        if (masked != 0 && first_error[cls] < 0) {
          first_error[cls] = base + std::countr_zero(masked);
        }
      }
    });
    if (transition) window.advance(good);
  }

  // Fold per-class outcomes into the result.
  BistResult result;
  result.pattern_count = patterns_.size();
  result.misr_width = misr.width();
  result.good_signature = reference.signature();
  result.fault_signatures.resize(classes);
  result.first_error_pattern = std::move(first_error);
  result.first_divergence_pattern = std::move(first_divergence);
  for (std::size_t cls = 0; cls < classes; ++cls) {
    result.fault_signatures[cls] = result.good_signature ^ delta[cls];
    const bool raw = result.first_error_pattern[cls] >= 0;
    const bool by_signature = delta[cls] != 0;
    if (raw) {
      ++result.raw_detected_classes;
      result.raw_covered_faults += faults.class_size(cls);
    }
    if (by_signature) {
      ++result.signature_detected_classes;
      result.signature_covered_faults += faults.class_size(cls);
    }
    if (raw && !by_signature) {
      result.aliased_classes.push_back(static_cast<std::uint32_t>(cls));
    }
  }
  const double universe = static_cast<double>(faults.fault_count());
  result.raw_coverage =
      static_cast<double>(result.raw_covered_faults) / universe;
  result.signature_coverage =
      static_cast<double>(result.signature_covered_faults) / universe;
  return result;
}

}  // namespace lsiq::bist
