// Multi-input signature register (MISR) — the response compactor of a
// logic-BIST architecture.
//
// A BIST tester does not observe circuit outputs pattern by pattern: an
// on-chip LFSR drives pseudo-random patterns and a MISR folds every
// response vector into a k-bit signature that is compared against the
// fault-free signature once, at the end of the session. Compaction is
// lossy — a faulty response stream can compact to the good signature
// ("aliasing"), in which case the fault is covered by the patterns but
// NOT by the test. The bist::BistSession grades that loss exactly; this
// header holds the register itself plus the analytic 2^-k aliasing model
// it is compared against.
//
// The register is a Galois LFSR (same convention as tpg::Lfsr, same
// polynomial table) with the compacted response word XORed in after each
// shift. Observation point i drives register stage i mod k — the classic
// space-compaction wiring, under which two simultaneous error bits
// landing on one stage cancel before they ever reach the register.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lsiq::bist {

class Misr {
 public:
  /// `width` k in [1, 64] is the signature length. `taps` == 0 selects
  /// the standard maximal-length polynomial for the width (see
  /// tpg::maximal_taps, which throws for unsupported widths); a non-zero
  /// value is used as the feedback mask directly (low k bits), so any
  /// custom polynomial/width pair is expressible.
  explicit Misr(int width, std::uint64_t taps = 0);

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] std::uint64_t taps() const noexcept { return taps_; }

  /// Current signature (low `width` bits).
  [[nodiscard]] std::uint64_t signature() const noexcept { return state_; }

  /// Reset the register to a known state (default: all-zero, the
  /// conventional BIST session start).
  void reset(std::uint64_t state = 0) noexcept { state_ = state & mask_; }

  /// One capture cycle: Galois shift of the register followed by XOR of
  /// the compacted response word.
  void step(std::uint64_t compacted) noexcept {
    state_ = next(state_, compacted);
  }

  /// Pure transition function: the state that follows `state` when
  /// `compacted` is captured. Exposed separately because the register is
  /// linear over GF(2): fault grading evolves one *difference* state per
  /// fault through this function (good XOR faulty), with the error bits
  /// as input, and never needs a Misr object per fault.
  [[nodiscard]] std::uint64_t next(std::uint64_t state,
                                   std::uint64_t compacted) const noexcept {
    const bool out = (state & 1ULL) != 0;
    state >>= 1;
    if (out) state ^= taps_;
    return (state ^ compacted) & mask_;
  }

  /// The register-input word that observation point `point` drives: a
  /// single bit at stage point mod width.
  [[nodiscard]] std::uint64_t input_bit(std::size_t point) const noexcept {
    return 1ULL << (point % static_cast<std::size_t>(width_));
  }

 private:
  int width_;
  std::uint64_t taps_;
  std::uint64_t mask_;
  std::uint64_t state_ = 0;
};

/// Analytic aliasing model: the probability that a fault whose response
/// stream differs from the good machine nevertheless compacts to the good
/// signature in a width-k MISR. For error streams long and irregular
/// enough to be effectively random over GF(2^k), every signature is
/// equally likely, so the aliasing probability approaches 2^-k (Smith
/// 1980); BistSession measures the exact value this approximates.
double misr_aliasing_probability(int width);

/// Expected signature coverage under the 2^-k model: of the fault mass a
/// full-observation tester detects, the fraction 2^-k aliases away.
double expected_signature_coverage(double full_observation_coverage,
                                   int width);

}  // namespace lsiq::bist
