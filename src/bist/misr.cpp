#include "bist/misr.hpp"

#include <cmath>

#include "tpg/lfsr.hpp"
#include "util/error.hpp"

namespace lsiq::bist {

namespace {

/// Width must be validated before the initializer list shifts by it.
int require_width(int width) {
  LSIQ_EXPECT(width >= 1 && width <= 64, "Misr: width must be in [1, 64]");
  return width;
}

}  // namespace

Misr::Misr(int width, std::uint64_t taps)
    : width_(require_width(width)),
      taps_(taps),
      mask_(width == 64 ? ~0ULL : ((1ULL << width) - 1)) {
  if (taps_ == 0) {
    taps_ = tpg::maximal_taps(width);  // throws for unsupported widths
  }
  LSIQ_EXPECT((taps_ & ~mask_) == 0, "Misr: taps exceed the register width");
}

double misr_aliasing_probability(int width) {
  LSIQ_EXPECT(width >= 1 && width <= 64,
              "misr_aliasing_probability: width must be in [1, 64]");
  return std::ldexp(1.0, -width);  // 2^-k
}

double expected_signature_coverage(double full_observation_coverage,
                                   int width) {
  LSIQ_EXPECT(full_observation_coverage >= 0.0 &&
                  full_observation_coverage <= 1.0,
              "expected_signature_coverage: coverage outside [0,1]");
  return full_observation_coverage * (1.0 - misr_aliasing_probability(width));
}

}  // namespace lsiq::bist
