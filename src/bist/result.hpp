// The outcome of a graded BIST session — split from session.hpp so
// consumers of the *result* (the wafer tester's signature-compare mode,
// report code) do not pull in the session machinery (compiled circuit,
// pattern store, thread pool) behind it.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/coverage.hpp"

namespace lsiq::fault {
class FaultList;
}  // namespace lsiq::fault

namespace lsiq::bist {

struct BistResult {
  std::size_t pattern_count = 0;
  int misr_width = 0;

  /// Fault-free reference signature of the session.
  std::uint64_t good_signature = 0;

  /// Per collapsed class: the end-of-session signature of the faulty
  /// machine. Equal to good_signature exactly when the class is
  /// undetected or aliased.
  std::vector<std::uint64_t> fault_signatures;

  /// Per class: first pattern whose response differs at ANY observed
  /// point (full-observation first detection; -1 = never). Matches
  /// simulate_ppsfp over the same pattern set.
  std::vector<std::int64_t> first_error_pattern;

  /// Per class: first pattern after which the running signature differs
  /// from the good machine's (-1 = never). >= first_error_pattern, with
  /// equality unless the first error cancels in space. A later return to
  /// equality is exactly an aliased class.
  std::vector<std::int64_t> first_divergence_pattern;

  /// Classes the pattern set detects under full observation / by final
  /// signature, and the same counts weighted by equivalence-class size
  /// over the paper's N-fault universe.
  std::size_t raw_detected_classes = 0;
  std::size_t signature_detected_classes = 0;
  std::size_t raw_covered_faults = 0;
  std::size_t signature_covered_faults = 0;

  /// Coverage fractions f = m/N: what a full-observation tester achieves
  /// with these patterns, and what survives signature compaction.
  double raw_coverage = 0.0;
  double signature_coverage = 0.0;

  /// Classes detected under full observation whose final signature
  /// nevertheless equals the good one.
  std::vector<std::uint32_t> aliased_classes;

  /// Coverage the MISR forfeits: raw_coverage - signature_coverage >= 0.
  [[nodiscard]] double aliasing_loss() const noexcept {
    return raw_coverage - signature_coverage;
  }

  /// Aliased fraction of the raw-detected classes — the measured
  /// counterpart of misr_aliasing_probability(misr_width).
  [[nodiscard]] double measured_aliasing_fraction() const noexcept;

  /// Cumulative coverage vs session length under full observation.
  [[nodiscard]] fault::CoverageCurve raw_curve(
      const fault::FaultList& faults) const;

  /// Cumulative coverage vs session length by signature divergence: the
  /// earliest session length at which each class would be caught. Its
  /// final value can exceed signature_coverage — the excess is exactly
  /// the aliased mass, which diverged mid-session and folded back.
  [[nodiscard]] fault::CoverageCurve signature_curve(
      const fault::FaultList& faults) const;
};

}  // namespace lsiq::bist
