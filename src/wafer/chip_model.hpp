// Monte-Carlo chip lots.
//
// The paper characterized its model on 277 production chips from a Bell
// Labs wafer lot; we cannot have those, so this module manufactures
// virtual lots with *known ground truth* (DESIGN.md, substitution table).
// A chip is a set of single stuck-at faults drawn from the circuit's fault
// universe. Two generators:
//
//   * model-faithful: the per-chip fault count is drawn exactly from the
//     paper's shifted-Poisson distribution (Eq. 1) — used to validate that
//     the Section 5 estimators recover the n0 that generated the data;
//
//   * physical: defects per chip are negative-binomial (the clustered
//     Eq. 3 defect model), each defect contributes 1 + Poisson(mu) logical
//     faults at structurally adjacent sites — the "a physical defect can
//     produce several logical faults" footnote of Section 3. Its fault
//     count is *not* shifted-Poisson, which is what makes it the stress
//     test for estimator robustness (bench/ablation_estimators).
//
// Chips fail a pattern when the pattern detects at least one resident
// fault (the single-fault-detection approximation the paper's urn model
// makes; multiple-fault masking is ignored, as in the paper).
#pragma once

#include <cstdint>
#include <vector>

#include "core/fault_distribution.hpp"
#include "fault/fault_list.hpp"

namespace lsiq::wafer {

/// One virtual chip: the collapsed fault classes present on it.
struct Chip {
  std::vector<std::uint32_t> fault_classes;

  [[nodiscard]] bool defective() const noexcept {
    return !fault_classes.empty();
  }
};

/// A lot of chips plus the ground truth that generated it.
struct ChipLot {
  std::vector<Chip> chips;
  double true_yield = 0.0;   ///< fraction of fault-free chips intended
  double true_n0 = 0.0;      ///< mean faults per defective chip intended

  [[nodiscard]] std::size_t size() const noexcept { return chips.size(); }

  /// Realized fraction of fault-free chips in this finite lot.
  [[nodiscard]] double realized_yield() const;

  /// Realized mean fault count over defective chips.
  [[nodiscard]] double realized_n0() const;
};

/// Model-faithful generator: chip fault counts follow Eq. 1 exactly; the
/// n faults are distinct uniform draws from the full universe, mapped to
/// their equivalence classes.
ChipLot generate_lot(const fault::FaultList& faults,
                     const quality::FaultDistribution& distribution,
                     std::size_t chip_count, std::uint64_t seed);

/// Parameters of the physical-defect generator.
struct PhysicalLotSpec {
  std::size_t chip_count = 277;
  double defects_per_chip = 2.0;        ///< lambda = D0 * A
  double variance_ratio = 0.5;          ///< X of Eq. 3 (0 = pure Poisson)
  double extra_faults_per_defect = 1.0; ///< mu: faults/defect = 1+Poisson(mu)
  /// Faults of one defect are drawn within a window of this many universe
  /// indices around a random center — crude spatial locality. 0 = uniform.
  std::size_t locality_window = 64;
  std::uint64_t seed = 1;

  friend bool operator==(const PhysicalLotSpec&,
                         const PhysicalLotSpec&) = default;
};

/// Physical generator (see header comment). true_n0 in the returned lot is
/// the *realized* mean faults per defective chip, since the construction
/// has no closed-form n0.
ChipLot generate_physical_lot(const fault::FaultList& faults,
                              const PhysicalLotSpec& spec);

}  // namespace lsiq::wafer
