#include "wafer/experiment.hpp"

#include "util/error.hpp"

namespace lsiq::wafer {

std::vector<quality::CoveragePoint> ExperimentResult::points() const {
  std::vector<quality::CoveragePoint> pts;
  pts.reserve(table.size());
  for (const StrobeRow& row : table) {
    pts.push_back(
        quality::CoveragePoint{row.actual_coverage, row.cumulative_fraction});
  }
  return pts;
}

ExperimentResult run_chip_test_experiment(const fault::FaultList& faults,
                                          const sim::PatternSet& patterns,
                                          const ExperimentSpec& spec) {
  LSIQ_EXPECT(!patterns.empty(), "experiment requires a pattern set");
  LSIQ_EXPECT(!spec.strobe_coverages.empty(),
              "experiment requires at least one strobe");

  // 1. Fault-simulate the ordered program (the LAMP step of Section 7),
  // under the tester's strobe schedule when one is requested.
  std::optional<fault::StrobeSchedule> schedule;
  if (spec.progressive_strobe_step > 0) {
    schedule = fault::StrobeSchedule::progressive(
        faults.circuit().observed_points().size(),
        spec.progressive_strobe_step);
  }
  const fault::StrobeSchedule* strobes =
      schedule.has_value() ? &*schedule : nullptr;
  fault::FaultSimResult fault_sim =
      spec.num_threads == 1
          ? fault::simulate_ppsfp(faults, patterns, strobes)
          : fault::simulate_ppsfp_mt(faults, patterns, strobes,
                                     spec.num_threads);
  fault::CoverageCurve curve = fault_sim.curve(faults, patterns.size());

  // 2. Manufacture the virtual lot.
  ChipLot lot;
  if (spec.physical.has_value()) {
    lot = generate_physical_lot(faults, *spec.physical);
  } else {
    const quality::FaultDistribution distribution(spec.yield, spec.n0);
    lot = generate_lot(faults, distribution, spec.chip_count, spec.seed);
  }

  // 3. Test it (the Sentry step of Section 7).
  LotTestResult test = test_lot(lot, fault_sim, patterns.size());

  // 4. Read out at the strobes.
  ExperimentResult result{.table = {},
                          .fault_sim = std::move(fault_sim),
                          .curve = std::move(curve),
                          .lot = std::move(lot),
                          .test = std::move(test)};
  for (const double target : spec.strobe_coverages) {
    if (!result.curve.reaches(target)) {
      throw Error("experiment: pattern set never reaches coverage " +
                  std::to_string(target) + " (final coverage " +
                  std::to_string(result.curve.final_coverage()) + ")");
    }
    const std::size_t t = result.curve.patterns_for_coverage(target);
    StrobeRow row;
    row.target_coverage = target;
    row.actual_coverage = result.curve.coverage_after(t);
    row.pattern_index = t;
    row.cumulative_failed = result.test.failed_within(t);
    row.cumulative_fraction = result.test.fraction_failed_within(t);
    result.table.push_back(row);
  }
  return result;
}

}  // namespace lsiq::wafer
