#include "wafer/experiment.hpp"

#include <utility>

#include "flow/flow.hpp"
#include "util/error.hpp"

namespace lsiq::wafer {

std::vector<quality::CoveragePoint> coverage_points(
    const std::vector<StrobeRow>& table) {
  std::vector<quality::CoveragePoint> pts;
  pts.reserve(table.size());
  for (const StrobeRow& row : table) {
    pts.push_back(
        quality::CoveragePoint{row.actual_coverage, row.cumulative_fraction});
  }
  return pts;
}

std::vector<quality::CoveragePoint> ExperimentResult::points() const {
  return coverage_points(table);
}

ExperimentResult run_chip_test_experiment(const fault::FaultList& faults,
                                          const sim::PatternSet& patterns,
                                          const ExperimentSpec& spec) {
  LSIQ_EXPECT(!patterns.empty(), "experiment requires a pattern set");
  LSIQ_EXPECT(!spec.strobe_coverages.empty(),
              "experiment requires at least one strobe");

  // Thin shim: express the legacy spec as a flow::FlowSpec and run the
  // unified pipeline. Field-for-field this reproduces the original
  // hand-wired sequencing (fault sim -> lot -> tester -> strobe rows);
  // tests/test_flow.cpp pins bit/row-identical results against a
  // hand-wired reference.
  flow::FlowSpec unified;
  unified.source.kind = "explicit";
  unified.source.patterns = patterns;
  if (spec.progressive_strobe_step > 0) {
    unified.observe.kind = "progressive";
    unified.observe.strobe_step = spec.progressive_strobe_step;
  } else {
    unified.observe.kind = "full";
  }
  if (spec.num_threads == 1) {
    unified.engine.kind = "ppsfp";
  } else {
    unified.engine.kind = "ppsfp_mt";
    unified.engine.num_threads = spec.num_threads;
  }
  unified.lot.chip_count = spec.chip_count;
  unified.lot.yield = spec.yield;
  unified.lot.n0 = spec.n0;
  unified.lot.seed = spec.seed;
  unified.lot.physical = spec.physical;
  unified.analysis.strobe_coverages = spec.strobe_coverages;
  unified.analysis.method = "given";

  flow::FlowResult run = flow::run(faults, unified);
  return ExperimentResult{.table = std::move(run.table),
                          .fault_sim = std::move(*run.fault_sim),
                          .curve = std::move(*run.curve),
                          .lot = std::move(*run.lot),
                          .test = std::move(*run.test)};
}

}  // namespace lsiq::wafer
