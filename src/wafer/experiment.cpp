#include "wafer/experiment.hpp"

namespace lsiq::wafer {

std::vector<quality::CoveragePoint> coverage_points(
    const std::vector<StrobeRow>& table) {
  std::vector<quality::CoveragePoint> pts;
  pts.reserve(table.size());
  for (const StrobeRow& row : table) {
    pts.push_back(
        quality::CoveragePoint{row.actual_coverage, row.cumulative_fraction});
  }
  return pts;
}

}  // namespace lsiq::wafer
