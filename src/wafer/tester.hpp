// The virtual tester ("Sentry"): ordered pattern application with
// first-fail recording.
//
// Mirrors the protocol of Section 7: patterns are applied in a fixed
// order; a chip is rejected at the first pattern it fails and sees no
// further patterns; chips that pass everything ship. Because the lot
// generator gives us ground truth, the tester also tallies what the 1981
// experiment could not observe directly: how many *defective* chips
// shipped — the empirical field reject rate that validates Eq. 8.
#pragma once

#include <cstdint>
#include <vector>

#include "bist/result.hpp"
#include "fault/fault_sim.hpp"
#include "wafer/chip_model.hpp"

namespace lsiq::wafer {

/// Per-chip test outcome.
struct ChipOutcome {
  std::int64_t first_fail_pattern = -1;  ///< -1 = passed every pattern
  bool defective = false;                ///< ground truth
};

struct LotTestResult {
  std::vector<ChipOutcome> outcomes;
  std::size_t pattern_count = 0;

  [[nodiscard]] std::size_t chip_count() const noexcept {
    return outcomes.size();
  }
  [[nodiscard]] std::size_t failed_count() const;
  [[nodiscard]] std::size_t passed_count() const;

  /// Defective chips that passed all patterns (escapes).
  [[nodiscard]] std::size_t shipped_defective_count() const;

  /// Escapes / shipped — the measured counterpart of Eq. 8's r(f).
  [[nodiscard]] double empirical_reject_rate() const;

  /// Chips whose first failure happened before `patterns` patterns were
  /// applied (the Table 1 "cumulative number of chips failed" column).
  [[nodiscard]] std::size_t failed_within(std::size_t patterns) const;

  /// failed_within as a fraction of the lot.
  [[nodiscard]] double fraction_failed_within(std::size_t patterns) const;
};

/// Test every chip of the lot against an ordered pattern set, using the
/// per-class first-detection indices from a completed fault simulation.
/// A chip's first failing pattern is the earliest first-detection among
/// its resident fault classes (single-fault-detection approximation).
LotTestResult test_lot(const ChipLot& lot,
                       const fault::FaultSimResult& fault_sim,
                       std::size_t pattern_count);

/// BIST mode: the tester clocks the whole session and makes ONE pass/fail
/// decision by comparing the chip's MISR signature against the good one.
/// Under the single-fault-detection approximation a chip fails iff at
/// least one resident fault class is signature-detected — faults the
/// session raw-detects but aliases DO ship, which is exactly the quality
/// loss the BIST analysis quantifies. Failing chips record the session's
/// last pattern as first_fail_pattern (the signature compare happens
/// there; BIST offers no earlier observability), so failed_within() is a
/// step function at the session end.
LotTestResult test_lot_bist(const ChipLot& lot,
                            const bist::BistResult& bist);

}  // namespace lsiq::wafer
