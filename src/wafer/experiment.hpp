// The Table-1 strobe readout row — the shared readout type of the wafer
// layer and the flow API.
//
// The end-to-end Section 5 / Section 7 experiment itself lives behind the
// unified flow front door: build a flow::FlowSpec (flow/spec.hpp) and call
// flow::run (flow/flow.hpp). The pre-flow entry point
// run_chip_test_experiment — an ExperimentSpec struct over explicit
// patterns — was a deprecated shim over flow::run through PR 3 and has
// been removed; its exact FlowSpec translation is recorded in the README
// migration table (source.kind = "explicit", observe "full"/"progressive",
// engine "ppsfp"/"ppsfp_mt", the lot axis, analysis.strobe_coverages).
#pragma once

#include <cstddef>
#include <vector>

#include "core/estimation.hpp"

namespace lsiq::wafer {

/// One row of a Table-1-style readout.
struct StrobeRow {
  double target_coverage = 0.0;   ///< the requested strobe (Table 1 col. 1)
  double actual_coverage = 0.0;   ///< curve value at the strobe pattern
  std::size_t pattern_index = 0;  ///< patterns applied up to the strobe
  std::size_t cumulative_failed = 0;
  double cumulative_fraction = 0.0;
};

/// Strobe table -> (coverage, fraction failed) points, the Section 5
/// estimator input. Consumed by flow::FlowResult::points().
std::vector<quality::CoveragePoint> coverage_points(
    const std::vector<StrobeRow>& table);

}  // namespace lsiq::wafer
