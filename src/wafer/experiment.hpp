// End-to-end chip-test experiments: the full Section 5 / Section 7 flow on
// a virtual process line.
//
//   circuit -> fault universe -> ordered patterns -> fault simulation
//           -> coverage curve -> virtual lot -> virtual tester
//           -> Table-1-style strobe table -> n0 estimation
//
// DEPRECATED ENTRY POINT: run_chip_test_experiment predates the unified
// flow API and survives as a thin shim over flow::run (flow/flow.hpp) for
// existing callers. New code should build a flow::FlowSpec — the same
// experiment is spec.source = "explicit" patterns, spec.observe = "full"
// or "progressive", engine "ppsfp"/"ppsfp_mt", plus the lot axis — which
// also unlocks the sources/observations this struct cannot express (ATPG
// or file programs, MISR signature testing). StrobeRow remains the shared
// readout row type of both APIs.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/estimation.hpp"
#include "fault/coverage.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "sim/pattern.hpp"
#include "wafer/chip_model.hpp"
#include "wafer/tester.hpp"

namespace lsiq::wafer {

/// One row of a Table-1-style readout.
struct StrobeRow {
  double target_coverage = 0.0;   ///< the requested strobe (Table 1 col. 1)
  double actual_coverage = 0.0;   ///< curve value at the strobe pattern
  std::size_t pattern_index = 0;  ///< patterns applied up to the strobe
  std::size_t cumulative_failed = 0;
  double cumulative_fraction = 0.0;
};

/// Strobe table -> (coverage, fraction failed) points, the Section 5
/// estimator input. Shared by ExperimentResult::points() and
/// flow::FlowResult::points().
std::vector<quality::CoveragePoint> coverage_points(
    const std::vector<StrobeRow>& table);

struct ExperimentSpec {
  std::size_t chip_count = 277;   ///< the paper's lot size
  double yield = 0.07;            ///< Section 7's estimated yield
  double n0 = 8.0;                ///< ground-truth n0 for the virtual lot
  std::uint64_t seed = 1981;
  /// Strobe coverages for the readout; defaults to Table 1's checkpoints.
  std::vector<double> strobe_coverages = {0.05, 0.08, 0.10, 0.15, 0.20,
                                          0.30, 0.36, 0.45, 0.50, 0.65};
  /// When set, the physical-defect generator is used instead of the
  /// model-faithful one (ground-truth n0 then comes from the realization).
  std::optional<PhysicalLotSpec> physical;
  /// Tester observability bring-up: when > 0, observed point i is strobed
  /// only from pattern i * progressive_strobe_step (see fault/strobe.hpp).
  /// This emulates the 1981 functional-program behaviour in which coverage
  /// rises gradually — the regime of the paper's Table 1. 0 = full
  /// observability from pattern 0 (scan-style testing).
  std::size_t progressive_strobe_step = 0;
  /// Worker threads for the fault-grading step: 1 = in-process PPSFP,
  /// else the shared util::resolve_worker_count convention (0 = one worker
  /// per hardware thread, n = exactly n). Any value grades to
  /// bit-identical results (see fault/fault_sim.hpp).
  std::size_t num_threads = 1;
};

struct ExperimentResult {
  std::vector<StrobeRow> table;        ///< Table-1-style rows
  fault::FaultSimResult fault_sim;     ///< per-class first detections
  fault::CoverageCurve curve;          ///< cumulative coverage vs patterns
  ChipLot lot;
  LotTestResult test;

  /// (coverage, fraction failed) points for the Section 5 estimators.
  [[nodiscard]] std::vector<quality::CoveragePoint> points() const;

  /// Final coverage of the full pattern program.
  [[nodiscard]] double final_coverage() const {
    return curve.final_coverage();
  }
};

/// Run the full experiment. The pattern set must already be ordered as the
/// tester would apply it. Throws if a strobe coverage is never reached by
/// the pattern set. Deprecated shim over flow::run — see the header
/// comment. Note the shim inherits flow::validate's checks, which are
/// stricter than the old entry point: strobe_coverages must be strictly
/// increasing in (0, 1], yield strictly inside (0, 1) and n0 >= 1, or
/// the call throws flow::InvalidSpec (an lsiq::Error).
ExperimentResult run_chip_test_experiment(const fault::FaultList& faults,
                                          const sim::PatternSet& patterns,
                                          const ExperimentSpec& spec);

}  // namespace lsiq::wafer
