#include "wafer/tester.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace lsiq::wafer {

std::size_t LotTestResult::failed_count() const {
  std::size_t n = 0;
  for (const ChipOutcome& o : outcomes) {
    if (o.first_fail_pattern >= 0) ++n;
  }
  return n;
}

std::size_t LotTestResult::passed_count() const {
  return outcomes.size() - failed_count();
}

std::size_t LotTestResult::shipped_defective_count() const {
  std::size_t n = 0;
  for (const ChipOutcome& o : outcomes) {
    if (o.first_fail_pattern < 0 && o.defective) ++n;
  }
  return n;
}

double LotTestResult::empirical_reject_rate() const {
  const std::size_t shipped = passed_count();
  if (shipped == 0) return 0.0;
  return static_cast<double>(shipped_defective_count()) /
         static_cast<double>(shipped);
}

std::size_t LotTestResult::failed_within(std::size_t patterns) const {
  std::size_t n = 0;
  for (const ChipOutcome& o : outcomes) {
    if (o.first_fail_pattern >= 0 &&
        static_cast<std::size_t>(o.first_fail_pattern) < patterns) {
      ++n;
    }
  }
  return n;
}

double LotTestResult::fraction_failed_within(std::size_t patterns) const {
  if (outcomes.empty()) return 0.0;
  return static_cast<double>(failed_within(patterns)) /
         static_cast<double>(outcomes.size());
}

LotTestResult test_lot(const ChipLot& lot,
                       const fault::FaultSimResult& fault_sim,
                       std::size_t pattern_count) {
  LSIQ_EXPECT(pattern_count > 0, "test_lot requires pattern_count > 0");
  LotTestResult result;
  result.pattern_count = pattern_count;
  result.outcomes.reserve(lot.size());

  for (const Chip& chip : lot.chips) {
    ChipOutcome outcome;
    outcome.defective = chip.defective();
    std::int64_t first = -1;
    for (const std::uint32_t cls : chip.fault_classes) {
      LSIQ_EXPECT(cls < fault_sim.first_detection.size(),
                  "test_lot: chip references an unknown fault class");
      const std::int64_t t = fault_sim.first_detection[cls];
      if (t < 0) continue;  // this fault is never detected by the program
      if (first < 0 || t < first) first = t;
    }
    if (first >= 0 && static_cast<std::size_t>(first) < pattern_count) {
      outcome.first_fail_pattern = first;
    }
    result.outcomes.push_back(outcome);
  }
  return result;
}

LotTestResult test_lot_bist(const ChipLot& lot,
                            const bist::BistResult& bist) {
  LSIQ_EXPECT(bist.pattern_count > 0,
              "test_lot_bist requires a non-empty session");
  const std::int64_t compare_at =
      static_cast<std::int64_t>(bist.pattern_count) - 1;

  LotTestResult result;
  result.pattern_count = bist.pattern_count;
  result.outcomes.reserve(lot.size());
  for (const Chip& chip : lot.chips) {
    ChipOutcome outcome;
    outcome.defective = chip.defective();
    for (const std::uint32_t cls : chip.fault_classes) {
      LSIQ_EXPECT(cls < bist.fault_signatures.size(),
                  "test_lot_bist: chip references an unknown fault class");
      if (bist.fault_signatures[cls] != bist.good_signature) {
        outcome.first_fail_pattern = compare_at;
        break;
      }
    }
    result.outcomes.push_back(outcome);
  }
  return result;
}

}  // namespace lsiq::wafer
