#include "wafer/wafer_map.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace lsiq::wafer {

WaferMap WaferMap::generate(const fault::FaultList& faults,
                            const WaferSpec& spec) {
  LSIQ_EXPECT(spec.wafer_diameter > 0.0, "wafer diameter must be positive");
  LSIQ_EXPECT(spec.die_width > 0.0 && spec.die_height > 0.0,
              "die dimensions must be positive");
  LSIQ_EXPECT(spec.center_defect_density >= 0.0,
              "defect density must be >= 0");
  LSIQ_EXPECT(spec.edge_density_multiplier >= 0.0,
              "edge multiplier must be >= 0");
  LSIQ_EXPECT(spec.variance_ratio >= 0.0, "variance ratio must be >= 0");
  const std::size_t universe = faults.fault_count();
  LSIQ_EXPECT(universe > 0, "wafer map requires a non-empty fault universe");

  const double radius = spec.wafer_diameter / 2.0;
  const double die_area = spec.die_width * spec.die_height;
  const int cols =
      static_cast<int>(std::floor(spec.wafer_diameter / spec.die_width));
  const int rows =
      static_cast<int>(std::floor(spec.wafer_diameter / spec.die_height));
  LSIQ_EXPECT(cols > 0 && rows > 0, "die larger than the wafer");

  util::Rng rng(spec.seed);
  WaferMap map;
  map.spec_ = spec;

  for (int gy = 0; gy < rows; ++gy) {
    for (int gx = 0; gx < cols; ++gx) {
      // Grid centered on the wafer.
      const double cx =
          (static_cast<double>(gx) - static_cast<double>(cols - 1) / 2.0) *
          spec.die_width;
      const double cy =
          (static_cast<double>(gy) - static_cast<double>(rows - 1) / 2.0) *
          spec.die_height;
      // Keep only dies fully inside the circle: the farthest corner must
      // be within the radius.
      const double corner_x = std::abs(cx) + spec.die_width / 2.0;
      const double corner_y = std::abs(cy) + spec.die_height / 2.0;
      if (std::hypot(corner_x, corner_y) > radius) continue;

      Die die;
      die.grid_x = gx;
      die.grid_y = gy;
      die.center_x = cx;
      die.center_y = cy;
      die.radius_fraction = std::hypot(cx, cy) / radius;

      // Radial density profile, then gamma-mixed per-die defect count.
      const double rr = die.radius_fraction * die.radius_fraction;
      const double density =
          spec.center_defect_density *
          (1.0 + (spec.edge_density_multiplier - 1.0) * rr);
      const double lambda = density * die_area;
      const std::uint64_t defects =
          spec.variance_ratio == 0.0
              ? rng.poisson(lambda)
              : rng.negative_binomial(lambda > 0.0 ? lambda : 0.0,
                                      1.0 / spec.variance_ratio);
      die.defect_count = static_cast<std::size_t>(defects);

      // Defects -> logical faults (uniform sites; locality handled by the
      // physical lot generator when needed).
      std::vector<std::uint32_t> classes;
      for (std::uint64_t d = 0; d < defects; ++d) {
        const std::uint64_t fault_count =
            1 + rng.poisson(spec.extra_faults_per_defect);
        for (std::uint64_t k = 0; k < fault_count; ++k) {
          classes.push_back(static_cast<std::uint32_t>(faults.class_of(
              static_cast<std::size_t>(rng.uniform_below(universe)))));
        }
      }
      std::sort(classes.begin(), classes.end());
      classes.erase(std::unique(classes.begin(), classes.end()),
                    classes.end());
      die.chip.fault_classes = std::move(classes);
      map.dies_.push_back(std::move(die));
    }
  }
  LSIQ_EXPECT(!map.dies_.empty(), "no dies fit inside the wafer");
  return map;
}

double WaferMap::yield() const {
  std::size_t good = 0;
  for (const Die& die : dies_) {
    if (!die.chip.defective()) ++good;
  }
  return static_cast<double>(good) / static_cast<double>(dies_.size());
}

double WaferMap::mean_faults_per_defective_die() const {
  std::size_t defective = 0;
  std::size_t faults = 0;
  for (const Die& die : dies_) {
    if (die.chip.defective()) {
      ++defective;
      faults += die.chip.fault_classes.size();
    }
  }
  if (defective == 0) return 0.0;
  return static_cast<double>(faults) / static_cast<double>(defective);
}

double WaferMap::yield_in_annulus(double lo, double hi) const {
  LSIQ_EXPECT(lo >= 0.0 && hi > lo, "yield_in_annulus: bad range");
  std::size_t total = 0;
  std::size_t good = 0;
  for (const Die& die : dies_) {
    if (die.radius_fraction >= lo && die.radius_fraction < hi) {
      ++total;
      if (!die.chip.defective()) ++good;
    }
  }
  if (total == 0) return 0.0;
  return static_cast<double>(good) / static_cast<double>(total);
}

ChipLot WaferMap::to_lot() const {
  ChipLot lot;
  lot.chips.reserve(dies_.size());
  for (const Die& die : dies_) {
    lot.chips.push_back(die.chip);
  }
  lot.true_yield = lot.realized_yield();
  lot.true_n0 = lot.realized_n0();
  return lot;
}

}  // namespace lsiq::wafer
