#include "wafer/chip_model.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace lsiq::wafer {

namespace {

/// Map distinct universe fault indices to a sorted, deduplicated class set.
std::vector<std::uint32_t> to_class_set(
    const fault::FaultList& faults,
    const std::vector<std::uint64_t>& universe_indices) {
  std::vector<std::uint32_t> classes;
  classes.reserve(universe_indices.size());
  for (const std::uint64_t u : universe_indices) {
    classes.push_back(static_cast<std::uint32_t>(
        faults.class_of(static_cast<std::size_t>(u))));
  }
  std::sort(classes.begin(), classes.end());
  classes.erase(std::unique(classes.begin(), classes.end()), classes.end());
  return classes;
}

}  // namespace

double ChipLot::realized_yield() const {
  if (chips.empty()) return 0.0;
  std::size_t good = 0;
  for (const Chip& c : chips) {
    if (!c.defective()) ++good;
  }
  return static_cast<double>(good) / static_cast<double>(chips.size());
}

double ChipLot::realized_n0() const {
  std::size_t defective = 0;
  std::size_t faults = 0;
  for (const Chip& c : chips) {
    if (c.defective()) {
      ++defective;
      faults += c.fault_classes.size();
    }
  }
  if (defective == 0) return 0.0;
  return static_cast<double>(faults) / static_cast<double>(defective);
}

ChipLot generate_lot(const fault::FaultList& faults,
                     const quality::FaultDistribution& distribution,
                     std::size_t chip_count, std::uint64_t seed) {
  LSIQ_EXPECT(chip_count > 0, "generate_lot requires chip_count > 0");
  const std::size_t universe = faults.fault_count();
  LSIQ_EXPECT(universe > 0, "generate_lot requires a non-empty universe");

  util::Rng rng(seed);
  ChipLot lot;
  lot.true_yield = distribution.yield();
  lot.true_n0 = distribution.n0();
  lot.chips.reserve(chip_count);

  for (std::size_t i = 0; i < chip_count; ++i) {
    const unsigned n = std::min<unsigned>(
        distribution.sample(rng), static_cast<unsigned>(universe));
    Chip chip;
    if (n > 0) {
      chip.fault_classes =
          to_class_set(faults, rng.sample_without_replacement(universe, n));
    }
    lot.chips.push_back(std::move(chip));
  }
  return lot;
}

ChipLot generate_physical_lot(const fault::FaultList& faults,
                              const PhysicalLotSpec& spec) {
  LSIQ_EXPECT(spec.chip_count > 0,
              "generate_physical_lot requires chip_count > 0");
  LSIQ_EXPECT(spec.defects_per_chip >= 0.0,
              "generate_physical_lot requires defects_per_chip >= 0");
  LSIQ_EXPECT(spec.variance_ratio >= 0.0,
              "generate_physical_lot requires variance_ratio >= 0");
  LSIQ_EXPECT(spec.extra_faults_per_defect >= 0.0,
              "generate_physical_lot requires extra_faults_per_defect >= 0");
  const std::size_t universe = faults.fault_count();
  LSIQ_EXPECT(universe > 0,
              "generate_physical_lot requires a non-empty universe");

  util::Rng rng(spec.seed);
  ChipLot lot;
  lot.chips.reserve(spec.chip_count);

  for (std::size_t i = 0; i < spec.chip_count; ++i) {
    const std::uint64_t defects =
        spec.variance_ratio == 0.0
            ? rng.poisson(spec.defects_per_chip)
            : rng.negative_binomial(spec.defects_per_chip,
                                    1.0 / spec.variance_ratio);
    std::vector<std::uint64_t> universe_indices;
    for (std::uint64_t d = 0; d < defects; ++d) {
      const std::uint64_t fault_count =
          1 + rng.poisson(spec.extra_faults_per_defect);
      if (spec.locality_window == 0) {
        for (std::uint64_t k = 0; k < fault_count; ++k) {
          universe_indices.push_back(rng.uniform_below(universe));
        }
      } else {
        // All faults of this defect land inside a window around a random
        // center — spatial locality of a single physical flaw.
        const std::uint64_t center = rng.uniform_below(universe);
        const std::uint64_t half = spec.locality_window / 2;
        const std::uint64_t lo = center >= half ? center - half : 0;
        const std::uint64_t hi =
            std::min<std::uint64_t>(lo + spec.locality_window, universe);
        for (std::uint64_t k = 0; k < fault_count; ++k) {
          universe_indices.push_back(lo + rng.uniform_below(hi - lo));
        }
      }
    }
    std::sort(universe_indices.begin(), universe_indices.end());
    universe_indices.erase(
        std::unique(universe_indices.begin(), universe_indices.end()),
        universe_indices.end());
    Chip chip;
    if (!universe_indices.empty()) {
      chip.fault_classes = to_class_set(faults, universe_indices);
    }
    lot.chips.push_back(std::move(chip));
  }

  lot.true_yield = lot.realized_yield();
  lot.true_n0 = lot.realized_n0();
  return lot;
}

}  // namespace lsiq::wafer
