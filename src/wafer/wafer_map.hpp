// Spatial wafer model: dies on a circular wafer with a radially varying,
// clustered defect density.
//
// Yield work since Stapper [10,12] models D0 as varying across the wafer
// (edges are worse). This module generates whole virtual wafers: die grid
// inside the circle, per-die defect counts from a gamma-mixed Poisson
// whose mean follows a radial profile, and the resulting die lots feed the
// same virtual-tester pipeline as the plain chip lots — letting the
// experiments ask how spatial non-uniformity distorts the (yield, n0)
// characterization the paper's procedure produces.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_list.hpp"
#include "wafer/chip_model.hpp"

namespace lsiq::wafer {

struct WaferSpec {
  double wafer_diameter = 100.0;  ///< same length unit as die sizes
  double die_width = 5.0;
  double die_height = 5.0;
  /// Mean defect density at the wafer center (defects per unit area).
  double center_defect_density = 0.02;
  /// Density multiplier at the wafer edge; the profile is
  /// D(r) = D_center * (1 + (edge - 1) * (r/R)^2). 1.0 = uniform.
  double edge_density_multiplier = 3.0;
  /// Clustering (Eq. 3's X) applied per die on top of the radial mean.
  double variance_ratio = 0.5;
  /// Logical faults per defect = 1 + Poisson(extra_faults_per_defect).
  double extra_faults_per_defect = 1.0;
  std::uint64_t seed = 1;
};

struct Die {
  int grid_x = 0;             ///< column index (0 at the left edge)
  int grid_y = 0;             ///< row index
  double center_x = 0.0;      ///< physical center, wafer center = (0, 0)
  double center_y = 0.0;
  double radius_fraction = 0; ///< distance from center / wafer radius
  std::size_t defect_count = 0;
  Chip chip;                  ///< resident fault classes
};

class WaferMap {
 public:
  /// Generate a wafer of dies for the given circuit's fault universe.
  /// Only dies lying fully inside the wafer circle are produced.
  static WaferMap generate(const fault::FaultList& faults,
                           const WaferSpec& spec);

  [[nodiscard]] const WaferSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const std::vector<Die>& dies() const noexcept {
    return dies_;
  }
  [[nodiscard]] std::size_t die_count() const noexcept {
    return dies_.size();
  }

  /// Fraction of defect-free dies.
  [[nodiscard]] double yield() const;

  /// Mean faults per defective die (the spatial analogue of n0).
  [[nodiscard]] double mean_faults_per_defective_die() const;

  /// Yield of the dies whose radius_fraction lies in [lo, hi) — the radial
  /// yield profile (edge dies yield worse when edge multiplier > 1).
  [[nodiscard]] double yield_in_annulus(double lo, double hi) const;

  /// Flatten into a ChipLot for the virtual tester pipeline.
  [[nodiscard]] ChipLot to_lot() const;

 private:
  WaferSpec spec_;
  std::vector<Die> dies_;
};

}  // namespace lsiq::wafer
