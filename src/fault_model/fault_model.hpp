// The fault-model axis: which fault universe coverage is measured on.
//
// The paper's DPPM-vs-coverage relationship is only as meaningful as the
// fault universe behind the coverage figure. The classic universe is the
// single stuck-at model; the standard next class is the transition
// (gross-delay) model — a line that fails to rise or fall in time, tested
// with two-pattern launch/capture sequences. This module makes the model a
// selectable axis: the enum and its spec-facing names live here (a leaf
// header, so fault::FaultList can tag itself with a model), the per-model
// universe factory in fault_model/universe.hpp, and the two-pattern
// launch-window kernel shared by every grading engine in
// fault_model/transition.hpp.
//
// Encoding convention: a transition fault reuses the fault::Fault record.
// `stuck_at_one == false` means slow-to-rise (the line holds 0 at capture,
// i.e. behaves stuck-at-0 on the capture pattern); `stuck_at_one == true`
// means slow-to-fall (behaves stuck-at-1 at capture). The launch condition
// — the preceding pattern must set the line to the pre-transition value —
// is what distinguishes the models; see fault_model/transition.hpp.
#pragma once

#include <optional>
#include <string>

namespace lsiq::fault_model {

enum class FaultModel {
  kStuckAt,     ///< single stuck-at: one-pattern detection
  kTransition,  ///< slow-to-rise / slow-to-fall: two-pattern detection
};

/// Spec-facing selector name: "stuck_at" | "transition". The name list
/// lives here so flow::validate, spec_io and the CLI cannot drift apart.
std::string fault_model_name(FaultModel model);

/// Human-readable label for reports: "stuck-at" | "transition".
std::string fault_model_label(FaultModel model);

/// Inverse of fault_model_name; nullopt for an unknown name.
std::optional<FaultModel> fault_model_from_name(const std::string& name);

/// Polarity suffix of a fault under a model: "s-a-0"/"s-a-1" for stuck-at,
/// "slow-to-rise"/"slow-to-fall" for transition (see the encoding
/// convention in the header comment).
std::string polarity_name(FaultModel model, bool stuck_at_one);

}  // namespace lsiq::fault_model
