// Per-model fault-universe factory: the one call sites use when the model
// is data (a FlowSpec axis, a CLI spec file) rather than a compile-time
// choice.
#pragma once

#include "circuit/netlist.hpp"
#include "fault/fault_list.hpp"
#include "fault_model/fault_model.hpp"

namespace lsiq::fault_model {

/// Enumerate and collapse the full universe of `model` faults:
/// FaultList::full_universe for stuck-at, FaultList::transition_universe
/// for transition. The returned list is tagged with the model
/// (FaultList::model()), which is how the grading engines select their
/// detection kernel.
fault::FaultList universe(const circuit::Circuit& circuit, FaultModel model);

}  // namespace lsiq::fault_model
