// Two-pattern (launch/capture) detection semantics for transition faults.
//
// A transition fault on line L is detected by the pattern PAIR (i-1, i):
// pattern i-1 sets L to the pre-transition value (the LAUNCH: 0 for
// slow-to-rise, 1 for slow-to-fall), and pattern i both drives the
// transition and propagates the late value to an observed point (the
// CAPTURE). Under the gross-delay abstraction the line holds its old value
// through the capture cycle, so the capture pattern sees exactly the
// corresponding stuck-at fault: slow-to-rise captures as stuck-at-0,
// slow-to-fall as stuck-at-1. Detection therefore factors into
//
//     detect_transition(i) = detect_stuck_at_capture(i) AND launch(i-1)
//
// which is what lets every existing stuck-at kernel grade transition
// faults: the engines compute the capture detect word as usual and AND in
// a launch word derived purely from GOOD-machine values — the faulty
// machine never influences the launch condition, so the gating is
// identical for every engine and thread count by construction.
//
// Pattern sources are reinterpreted as consecutive-pair sequences: pattern
// i-1 launches what pattern i captures, for every i >= 1 (LFSR programs,
// explicit sets and pattern files need no repetition or reordering). The
// program's very first pattern has no launch predecessor and can never
// detect a transition fault; TwoPatternWindow masks that lane out. The
// word boundary — pattern 64b capturing what pattern 64b-1 launched — is
// handled by carrying each gate's lane-63 good value into the next
// block's lane 0.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/netlist.hpp"
#include "sim/wide_word.hpp"

namespace lsiq::fault_model {

/// Rolling launch-value state for two-pattern grading over a block
/// sequence. One instance accompanies a grading run: the engine asks for
/// launch masks while a block's good values are live, then advance()s past
/// the block. Blocks must be visited in program order exactly once.
class TwoPatternWindow {
 public:
  explicit TwoPatternWindow(std::size_t node_count)
      : carry_(node_count, 0) {}

  /// Word whose bit p is the good value of `line` at pattern p-1 of the
  /// current block (bit 0 reads the previous block's pattern 63; garbage
  /// in the first block, where valid_ masks it out of launch_mask).
  /// `good` is the current block's good-machine value array.
  [[nodiscard]] std::uint64_t previous_word(
      circuit::GateId line, const std::uint64_t* good) const {
    return (good[line] << 1) | carry_[line];
  }

  /// Launch mask for a transition fault on `line`: lanes whose preceding
  /// pattern held the pre-transition value (0 for slow-to-rise, 1 for
  /// slow-to-fall). Clears lane 0 of the program's first block, which has
  /// no launch pattern.
  [[nodiscard]] std::uint64_t launch_mask(circuit::GateId line,
                                          bool slow_to_fall,
                                          const std::uint64_t* good) const {
    const std::uint64_t previous = previous_word(line, good);
    return (slow_to_fall ? previous : ~previous) & valid_;
  }

  /// Record the current block before moving to the next: each gate's
  /// lane-63 value becomes the next block's lane-0 launch value.
  void advance(const std::vector<std::uint64_t>& good) {
    for (std::size_t g = 0; g < carry_.size(); ++g) {
      carry_[g] = good[g] >> 63;
    }
    valid_ = ~0ULL;
  }

 private:
  std::vector<std::uint64_t> carry_;  ///< 0 or 1 per gate: last lane's value
  std::uint64_t valid_ = ~1ULL;       ///< all-ones once a block has passed
};

/// TwoPatternWindow over N x 64-lane wide blocks (the width-generic
/// grading kernel). Same rolling-launch semantics: within a wide block the
/// previous-pattern word shifts across sub-word boundaries (lane 63 of
/// sub-word j-1 launches lane 0 of sub-word j), and each gate's final lane
/// carries into the next wide block. Bit-identical per pattern to the
/// narrow window walking the same program N sub-blocks at a time.
template <std::size_t N>
class WideTwoPatternWindow {
 public:
  explicit WideTwoPatternWindow(std::size_t node_count)
      : carry_(node_count, 0), valid_(sim::WideWord<N>::ones()) {
    valid_.w[0] = ~1ULL;  // the program's first pattern has no launch
  }

  /// See TwoPatternWindow::previous_word; `good` is the wide good-machine
  /// value array of the current wide block.
  [[nodiscard]] sim::WideWord<N> previous_word(
      circuit::GateId line, const sim::WideWord<N>* good) const {
    const sim::WideWord<N>& g = good[line];
    sim::WideWord<N> previous;
    previous.w[0] = (g.w[0] << 1) | carry_[line];
    for (std::size_t j = 1; j < N; ++j) {
      previous.w[j] = (g.w[j] << 1) | (g.w[j - 1] >> 63);
    }
    return previous;
  }

  [[nodiscard]] sim::WideWord<N> launch_mask(
      circuit::GateId line, bool slow_to_fall,
      const sim::WideWord<N>* good) const {
    const sim::WideWord<N> previous = previous_word(line, good);
    return (slow_to_fall ? previous : ~previous) & valid_;
  }

  /// Record the current wide block before moving to the next.
  void advance(const sim::WideWord<N>* good) {
    for (std::size_t g = 0; g < carry_.size(); ++g) {
      carry_[g] = good[g].w[N - 1] >> 63;
    }
    valid_ = sim::WideWord<N>::ones();
  }

  /// Seed the carry from a NARROW good-value block (the last 64-pattern
  /// block a narrow warm-up pass graded) so a wide window can take over
  /// mid-program: lane 0 of the next wide block launches against lane 63
  /// of that block, and every lane is valid.
  void seed_from_narrow(const std::vector<std::uint64_t>& good) {
    for (std::size_t g = 0; g < carry_.size(); ++g) {
      carry_[g] = good[g] >> 63;
    }
    valid_ = sim::WideWord<N>::ones();
  }

 private:
  std::vector<std::uint64_t> carry_;  ///< 0 or 1 per gate: last lane's value
  sim::WideWord<N> valid_;            ///< all-ones once a block has passed
};

}  // namespace lsiq::fault_model
