#include "fault_model/fault_model.hpp"

namespace lsiq::fault_model {

std::string fault_model_name(FaultModel model) {
  return model == FaultModel::kStuckAt ? "stuck_at" : "transition";
}

std::string fault_model_label(FaultModel model) {
  return model == FaultModel::kStuckAt ? "stuck-at" : "transition";
}

std::optional<FaultModel> fault_model_from_name(const std::string& name) {
  if (name == "stuck_at") return FaultModel::kStuckAt;
  if (name == "transition") return FaultModel::kTransition;
  return std::nullopt;
}

std::string polarity_name(FaultModel model, bool stuck_at_one) {
  if (model == FaultModel::kStuckAt) {
    return stuck_at_one ? "s-a-1" : "s-a-0";
  }
  return stuck_at_one ? "slow-to-fall" : "slow-to-rise";
}

}  // namespace lsiq::fault_model
