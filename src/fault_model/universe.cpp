#include "fault_model/universe.hpp"

namespace lsiq::fault_model {

fault::FaultList universe(const circuit::Circuit& circuit, FaultModel model) {
  if (model == FaultModel::kTransition) {
    return fault::FaultList::transition_universe(circuit);
  }
  return fault::FaultList::full_universe(circuit);
}

}  // namespace lsiq::fault_model
