// SCOAP testability measures (Goldstein 1979).
//
// Combinational controllability CC0/CC1 (how hard is it to drive a line to
// 0/1) and observability CO (how hard to propagate the line to an output),
// computed structurally in one forward and one backward pass. Used here
// for three things: ranking faults by expected detection difficulty,
// steering PODEM's backtrace (PodemOptions::use_scoap via AtpgOptions),
// and explaining *why* random-pattern coverage curves flatten — the
// hard-fault tail is exactly the high-SCOAP tail.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/netlist.hpp"
#include "fault/fault.hpp"

namespace lsiq::tpg {

/// Saturating cost ceiling: anything at or above this is "effectively
/// untestable by structural reasoning" (e.g. lines behind constants).
inline constexpr std::uint32_t kScoapInfinity = 1u << 30;

struct TestabilityMeasures {
  /// Cost of driving each gate's output to 0 / 1 (indexed by GateId).
  std::vector<std::uint32_t> cc0;
  std::vector<std::uint32_t> cc1;
  /// Cost of observing each gate's output at some observed point.
  std::vector<std::uint32_t> observability;
};

/// Compute all three measures. Inputs (and scan flip-flop outputs) have
/// controllability 1; observed points have observability 0; all costs
/// saturate at kScoapInfinity.
TestabilityMeasures compute_scoap(const circuit::Circuit& circuit);

/// SCOAP detection-cost estimate for a stuck-at fault: controllability of
/// the opposite value on its line plus the line's observability (for a
/// branch fault, observation through that pin's gate).
std::uint32_t fault_detection_cost(const circuit::Circuit& circuit,
                                   const TestabilityMeasures& measures,
                                   const fault::Fault& fault);

}  // namespace lsiq::tpg
