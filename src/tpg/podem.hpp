// PODEM (Path-Oriented DEcision Making) deterministic test generation.
//
// Goel's algorithm: decisions are made only at primary inputs; a five-valued
// forward implication after each decision either proves the fault effect at
// an output, shows the decision dead (no activation, empty D-frontier or no
// X-path), or asks for the next objective. Exhausting the decision tree is a
// *proof of redundancy* — exactly the redundant-fault phenomenon the paper
// cites as a reason 100% coverage is unattainable in practice.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/netlist.hpp"
#include "fault/fault.hpp"

namespace lsiq::tpg {

enum class TestStatus {
  kDetected,    ///< a test pattern was found
  kUntestable,  ///< decision tree exhausted: the fault is redundant
  kAborted,     ///< backtrack limit hit before a verdict
};

struct PodemOptions {
  int max_backtracks = 20000;
  /// X bits of the final cube are filled pseudo-randomly from this seed
  /// (deterministic); set random_fill=false to fill with zeros instead.
  std::uint64_t fill_seed = 0x5eedULL;
  bool random_fill = true;
  /// Optional SCOAP measures (see scoap.hpp): when set, backtrace chooses
  /// fanins by controllability cost instead of logic level — usually fewer
  /// backtracks on reconvergent structures. Must outlive the call.
  const struct TestabilityMeasures* scoap = nullptr;

  friend bool operator==(const PodemOptions&, const PodemOptions&) = default;
};

struct PodemResult {
  TestStatus status = TestStatus::kAborted;
  /// Complete input pattern (over Circuit::pattern_inputs()); only
  /// meaningful when status == kDetected.
  std::vector<bool> pattern;
  /// The test cube before X-fill: one entry per pattern input,
  /// -1 = don't-care, 0/1 = required value.
  std::vector<int> cube;
  int backtracks = 0;
  int decisions = 0;
};

/// Generate a test for a single stuck-at fault.
PodemResult generate_test(const circuit::Circuit& circuit,
                          const fault::Fault& fault,
                          const PodemOptions& options = {});

}  // namespace lsiq::tpg
