// PODEM (Path-Oriented DEcision Making) deterministic test generation.
//
// Goel's algorithm: decisions are made only at primary inputs; a five-valued
// forward implication after each decision either proves the fault effect at
// an output, shows the decision dead (no activation, empty D-frontier or no
// X-path), or asks for the next objective. Exhausting the decision tree is a
// *proof of redundancy* — exactly the redundant-fault phenomenon the paper
// cites as a reason 100% coverage is unattainable in practice.
//
// The same machinery serves the transition (gross-delay) model: a
// two-pattern test solves the capture stuck-at objective on pattern i and
// justifies the launch value (the pre-transition polarity at the fault
// site) on pattern i-1, each with its own decision tree — so a transition
// fault carries two distinct redundancy proofs, untestable-launch versus
// untestable-capture (see generate_transition_test).
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/netlist.hpp"
#include "fault/fault.hpp"
#include "sim/logic_value.hpp"

namespace lsiq::analyze {
class ImplicationEngine;
}  // namespace lsiq::analyze

namespace lsiq::tpg {

enum class TestStatus {
  kDetected,    ///< a test pattern was found
  kUntestable,  ///< decision tree exhausted: the fault is redundant
  kAborted,     ///< backtrack limit hit before a verdict
};

struct PodemOptions {
  int max_backtracks = 20000;
  /// X bits of the final cube are filled pseudo-randomly from this seed
  /// (deterministic); set random_fill=false to fill with zeros instead.
  std::uint64_t fill_seed = 0x5eedULL;
  bool random_fill = true;
  /// Optional SCOAP measures (see scoap.hpp): when set, backtrace chooses
  /// fanins by controllability cost instead of logic level — usually fewer
  /// backtracks on reconvergent structures. Must outlive the call.
  const struct TestabilityMeasures* scoap = nullptr;
  /// Consult a static implication engine (analyze/implication.hpp) for the
  /// fault's necessary assignments: a contradictory set is an instant
  /// redundancy proof (zero backtracks), and a violated necessary literal
  /// is detected as a dead end before the subtree is explored. Pruning is
  /// conflict-detection only — the decision order is untouched, so a
  /// detected fault yields the bit-identical cube and pattern, with
  /// backtracks less than or equal to the unassisted search.
  bool use_implications = true;
  /// Engine to consult when use_implications is set. Null means build one
  /// locally per call; callers solving many faults on one circuit should
  /// pass a shared engine (must outlive the call).
  const analyze::ImplicationEngine* implications = nullptr;

  friend bool operator==(const PodemOptions&, const PodemOptions&) = default;
};

struct PodemResult {
  TestStatus status = TestStatus::kAborted;
  /// Complete input pattern (over Circuit::pattern_inputs()); only
  /// meaningful when status == kDetected.
  std::vector<bool> pattern;
  /// The test cube before X-fill: one entry per pattern input,
  /// -1 = don't-care, 0/1 = required value.
  std::vector<int> cube;
  int backtracks = 0;
  int decisions = 0;
};

/// Generate a test for a single stuck-at fault.
PodemResult generate_test(const circuit::Circuit& circuit,
                          const fault::Fault& fault,
                          const PodemOptions& options = {});

/// Which half of a two-pattern test was proven impossible. A transition
/// fault admits two distinct redundancy proofs, and they mean different
/// things to a designer: kLaunch says the line never holds the
/// pre-transition value (a constant-fed site — the transition itself
/// cannot occur), kCapture says the matching capture stuck-at fault is
/// redundant (the late value can never be observed).
enum class UntestableReason {
  kNone,     ///< not untestable (status is kDetected or kAborted)
  kLaunch,   ///< the launch value is unjustifiable on any input pattern
  kCapture,  ///< the capture stuck-at objective is redundant
};

/// A deterministic two-pattern transition test: the ordered (launch,
/// capture) pair to append to the program. Pattern semantics follow
/// fault_model/transition.hpp — `launch` is pattern i-1 (sets the fault
/// line to the pre-transition value), `capture` is pattern i (the PODEM
/// test for the matching capture stuck-at fault).
struct TransitionTestResult {
  TestStatus status = TestStatus::kAborted;
  UntestableReason untestable_reason = UntestableReason::kNone;
  /// Fully specified pattern pair; only meaningful when kDetected.
  std::vector<bool> launch;
  std::vector<bool> capture;
  /// Test cubes before X-fill (-1 = don't-care), one entry per input.
  std::vector<int> launch_cube;
  std::vector<int> capture_cube;
  /// Search effort, summed over the launch and capture solves.
  int backtracks = 0;
  int decisions = 0;
};

/// Generate a two-pattern test for a single transition fault
/// (fault_model encoding: stuck_at_one == slow-to-fall). Solves the
/// capture stuck-at objective with PODEM and the launch value (opposite
/// polarity at the fault site on the preceding pattern) with the same
/// five-valued implication engine; the two patterns are independent input
/// vectors under full scan. Exhausting either decision tree is a proof of
/// redundancy, labelled by `untestable_reason`.
TransitionTestResult generate_transition_test(const circuit::Circuit& circuit,
                                              const fault::Fault& fault,
                                              const PodemOptions& options =
                                                  {});

/// Justify `line == value` in the good machine: find an input pattern
/// driving the line to the value, or prove none exists (kUntestable).
/// This is the launch half of generate_transition_test, exposed on its
/// own because it is a useful primitive (constant-net proofs, bias
/// analysis). `value` must not be Tri::kX.
PodemResult justify_line(const circuit::Circuit& circuit,
                         circuit::GateId line, sim::Tri value,
                         const PodemOptions& options = {});

}  // namespace lsiq::tpg
