#include "tpg/podem.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "analyze/implication.hpp"
#include "circuit/compiled.hpp"
#include "sim/five_value_sim.hpp"
#include "tpg/scoap.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace lsiq::tpg {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateId;
using circuit::GateType;
using sim::FiveValue;
using sim::FiveValueSimulator;
using sim::Tri;

namespace {

/// A requested (signal, value) pair to be traced back to a primary input.
struct Objective {
  GateId gate = circuit::kNoGate;
  Tri value = Tri::kX;
};

/// One entry of the PODEM decision stack.
struct Decision {
  std::size_t input_index;
  Tri value;
  bool flipped;  ///< both branches tried?
};

bool x_good(const FiveValueSimulator& simulator, GateId id) {
  return sim::has_x(simulator.value(id));
}

/// Map a gate type onto (core, inverting): NAND -> AND core + inversion etc.
bool inverting_core(GateType type) {
  return type == GateType::kNot || type == GateType::kNand ||
         type == GateType::kNor || type == GateType::kXnor;
}

/// Non-controlling value of the gate's core function (AND -> 1, OR -> 0).
/// XOR has none; 1 is returned as an arbitrary-but-fixed choice.
Tri non_controlling(GateType type) {
  switch (type) {
    case GateType::kAnd:
    case GateType::kNand:
      return Tri::kOne;
    case GateType::kOr:
    case GateType::kNor:
      return Tri::kZero;
    default:
      return Tri::kOne;
  }
}

/// Choose the next objective, or return false when the search state is a
/// dead end that requires backtracking.
bool pick_objective(const FiveValueSimulator& simulator,
                    const Circuit& circuit, Objective& objective) {
  // Phase 1: activation. The good machine must drive the faulted line to
  // the opposite of the stuck value.
  const GateId line = simulator.fault_line();
  const FiveValue line_value = simulator.value(line);
  const Tri sv = simulator.stuck_at_one() ? Tri::kOne : Tri::kZero;
  if (line_value.good == Tri::kX) {
    objective = {line, sim::tri_not(sv)};
    return true;
  }
  if (line_value.good == sv) {
    return false;  // activation impossible under current assignments
  }

  // Phase 2: propagation. Drive one D-frontier gate's unknown side input to
  // its non-controlling value. Prefer the frontier gate closest to an
  // output (highest level) — the classic distance heuristic.
  const std::vector<GateId> frontier = simulator.d_frontier();
  if (frontier.empty()) {
    return false;
  }
  GateId best = frontier.front();
  for (const GateId id : frontier) {
    if (circuit.gate(id).level > circuit.gate(best).level) {
      best = id;
    }
  }
  const Gate& g = circuit.gate(best);
  for (const GateId in : g.fanin) {
    if (x_good(simulator, in)) {
      objective = {in, non_controlling(g.type)};
      return true;
    }
  }
  return false;  // no X side input: frontier gate cannot be sensitized now
}

/// Trace an objective back to an unassigned pattern input, returning the
/// (input index, value) decision to try.
bool backtrace(const FiveValueSimulator& simulator, const Circuit& circuit,
               const TestabilityMeasures* scoap, Objective objective,
               std::size_t& input_index_out, Tri& value_out) {
  GateId id = objective.gate;
  Tri v = objective.value;

  // Difficulty of driving `gate` to `value`: SCOAP controllability when
  // available, logic level otherwise.
  auto cost = [&](GateId gate, Tri value) -> std::uint64_t {
    if (scoap != nullptr) {
      return value == Tri::kZero ? scoap->cc0[gate] : scoap->cc1[gate];
    }
    return circuit.gate(gate).level;
  };

  // Levels strictly decrease along the walk, so this terminates.
  for (;;) {
    const Gate& g = circuit.gate(id);
    if (g.type == GateType::kInput || g.type == GateType::kDff) {
      const auto& inputs = circuit.pattern_inputs();
      const auto it = std::find(inputs.begin(), inputs.end(), id);
      LSIQ_EXPECT(it != inputs.end(), "backtrace: source is not an input");
      input_index_out = static_cast<std::size_t>(it - inputs.begin());
      value_out = v;
      return true;
    }
    if (inverting_core(g.type)) {
      v = sim::tri_not(v);
    }

    // Choose an X fanin. If v is the controlling-side requirement (one
    // input suffices), take the easiest; if every input must comply, take
    // the hardest first to fail fast.
    const bool controlling_request = (v != non_controlling(g.type));
    GateId chosen = circuit::kNoGate;
    for (const GateId in : g.fanin) {
      if (!x_good(simulator, in)) continue;
      if (chosen == circuit::kNoGate) {
        chosen = in;
        continue;
      }
      const std::uint64_t cost_in = cost(in, v);
      const std::uint64_t cost_ch = cost(chosen, v);
      if ((controlling_request && cost_in < cost_ch) ||
          (!controlling_request && cost_in > cost_ch)) {
        chosen = in;
      }
    }
    if (chosen == circuit::kNoGate) {
      return false;  // no X path toward inputs from this objective
    }
    id = chosen;
  }
}

/// Flip the newest unflipped decision (or pop exhausted ones). Returns
/// false when the decision tree is exhausted — the redundancy proof shared
/// by the stuck-at search and the launch justification.
bool backtrack_decision(FiveValueSimulator& simulator,
                        std::vector<Decision>& stack, int& backtracks) {
  ++backtracks;
  while (!stack.empty()) {
    Decision& top = stack.back();
    if (!top.flipped) {
      top.flipped = true;
      top.value = sim::tri_not(top.value);
      simulator.assign_input(top.input_index, top.value);
      simulator.imply();
      return true;
    }
    simulator.assign_input(top.input_index, Tri::kX);
    stack.pop_back();
  }
  simulator.imply();
  return false;  // decision tree exhausted
}

/// Export the test cube and a fully specified pattern from the final
/// simulator state (X bits filled per options).
void export_pattern(const FiveValueSimulator& simulator,
                    const PodemOptions& options, PodemResult& result) {
  const std::size_t input_count =
      simulator.circuit().pattern_inputs().size();
  result.cube.assign(input_count, -1);
  if (result.status != TestStatus::kDetected) return;
  util::Rng fill(options.fill_seed);
  result.pattern.assign(input_count, false);
  for (std::size_t i = 0; i < input_count; ++i) {
    const Tri a = simulator.input_assignment(i);
    if (a == Tri::kX) {
      result.pattern[i] = options.random_fill ? fill.bernoulli(0.5) : false;
    } else {
      result.cube[i] = (a == Tri::kOne) ? 1 : 0;
      result.pattern[i] = (a == Tri::kOne);
    }
  }
}

/// Resolve the implication engine a solve consults: the caller's shared
/// engine when provided, a locally built one otherwise (the optionals give
/// it storage that outlives the search), or none when the knob is off.
const analyze::ImplicationEngine* resolve_engine(
    const Circuit& circuit, const PodemOptions& options,
    std::optional<circuit::CompiledCircuit>& owned_compiled,
    std::optional<analyze::ImplicationEngine>& owned_engine) {
  if (!options.use_implications) return nullptr;
  if (options.implications != nullptr) return options.implications;
  owned_compiled.emplace(circuit);
  owned_engine.emplace(*owned_compiled);
  return &*owned_engine;
}

/// True when some necessary good-machine literal is already implied to the
/// opposite value. Five-valued implication is monotone — a determined rail
/// never changes as more inputs are assigned — so a violation here proves
/// every extension of the current assignment fails, and the subtree can be
/// abandoned without exploring it.
bool necessary_violated(const FiveValueSimulator& simulator,
                        const std::vector<analyze::Literal>& necessary) {
  for (const analyze::Literal lit : necessary) {
    const Tri good = simulator.value(analyze::literal_line(lit)).good;
    if (good == Tri::kX) continue;
    if ((good == Tri::kOne) != analyze::literal_one(lit)) return true;
  }
  return false;
}

}  // namespace

PodemResult generate_test(const Circuit& circuit, const fault::Fault& fault,
                          const PodemOptions& options) {
  LSIQ_EXPECT(circuit.finalized(), "generate_test: circuit not finalized");
  PodemResult result;

  FiveValueSimulator simulator(circuit);
  simulator.set_fault(fault.gate, fault.pin, fault.stuck_at_one);
  simulator.imply();

  // Static implication assist: a contradictory necessary-assignment set is
  // a redundancy proof before the first decision; a consistent set becomes
  // a conflict monitor inside dead_end.
  std::optional<circuit::CompiledCircuit> owned_compiled;
  std::optional<analyze::ImplicationEngine> owned_engine;
  const analyze::ImplicationEngine* engine =
      resolve_engine(circuit, options, owned_compiled, owned_engine);
  std::vector<analyze::Literal> necessary;
  if (engine != nullptr) {
    analyze::NecessaryAssignments assignments =
        engine->necessary_assignments(fault);
    if (assignments.contradictory) {
      result.status = TestStatus::kUntestable;
      export_pattern(simulator, options, result);
      return result;
    }
    necessary = std::move(assignments.literals);
  }

  std::vector<Decision> stack;

  auto dead_end = [&]() {
    // The current assignment cannot be extended to a test.
    if (!simulator.activation_possible()) return true;
    if (simulator.fault_effect_observed()) return false;
    if (necessary_violated(simulator, necessary)) return true;
    const FiveValue line = simulator.value(simulator.fault_line());
    const bool activated = sim::is_d_or_dbar(line) ||
                           (!sim::has_x(line) &&
                            line.good != (simulator.stuck_at_one()
                                              ? Tri::kOne
                                              : Tri::kZero));
    if (activated && simulator.d_frontier().empty()) return true;
    if (activated && !simulator.x_path_exists()) return true;
    return false;
  };

  for (;;) {
    if (simulator.fault_effect_observed()) {
      result.status = TestStatus::kDetected;
      break;
    }
    if (result.backtracks > options.max_backtracks) {
      result.status = TestStatus::kAborted;
      break;
    }

    bool need_backtrack = dead_end();
    Objective objective;
    std::size_t input_index = 0;
    Tri value = Tri::kX;
    if (!need_backtrack) {
      need_backtrack = !pick_objective(simulator, circuit, objective) ||
                       !backtrace(simulator, circuit, options.scoap,
                                  objective, input_index, value);
    }

    if (need_backtrack) {
      if (!backtrack_decision(simulator, stack, result.backtracks)) {
        result.status = TestStatus::kUntestable;
        break;
      }
      continue;
    }

    ++result.decisions;
    stack.push_back(Decision{input_index, value, false});
    simulator.assign_input(input_index, value);
    simulator.imply();
  }

  export_pattern(simulator, options, result);
  return result;
}

PodemResult justify_line(const circuit::Circuit& circuit,
                         circuit::GateId line, Tri value,
                         const PodemOptions& options) {
  LSIQ_EXPECT(circuit.finalized(), "justify_line: circuit not finalized");
  LSIQ_EXPECT(line < circuit.gate_count(), "justify_line: line out of range");
  LSIQ_EXPECT(value != Tri::kX, "justify_line: value must be 0 or 1");
  PodemResult result;

  // The five-valued engine wants an injected fault; pinning the line's
  // faulty rail to the opposite value makes the activation objective —
  // drive the good rail away from the stuck value — exactly the
  // justification objective. Only the good rail is read below.
  FiveValueSimulator simulator(circuit);
  simulator.set_fault(line, -1, /*stuck_at_one=*/value == Tri::kZero);
  simulator.imply();

  // Static implication assist, mirroring generate_test: a contradictory
  // closure of (line = value) proves the line constant at the opposite
  // value; the closure's literals prune decision subtrees that violate one.
  std::optional<circuit::CompiledCircuit> owned_compiled;
  std::optional<analyze::ImplicationEngine> owned_engine;
  const analyze::ImplicationEngine* engine =
      resolve_engine(circuit, options, owned_compiled, owned_engine);
  std::vector<analyze::Literal> necessary;
  if (engine != nullptr) {
    analyze::NecessaryAssignments assignments =
        engine->justification_assignments(line, value == Tri::kOne);
    if (assignments.contradictory) {
      result.status = TestStatus::kUntestable;
      export_pattern(simulator, options, result);
      return result;
    }
    necessary = std::move(assignments.literals);
  }

  std::vector<Decision> stack;
  for (;;) {
    const Tri good = simulator.value(line).good;
    if (good == value) {
      result.status = TestStatus::kDetected;
      break;
    }
    if (result.backtracks > options.max_backtracks) {
      result.status = TestStatus::kAborted;
      break;
    }

    // good is X (keep driving toward the objective) or the opposite value
    // (the current assignments imply the line away — a dead end). A
    // violated necessary literal is the same dead end caught earlier.
    bool need_backtrack =
        good != Tri::kX || necessary_violated(simulator, necessary);
    std::size_t input_index = 0;
    Tri decide = Tri::kX;
    if (!need_backtrack) {
      need_backtrack = !backtrace(simulator, circuit, options.scoap,
                                  Objective{line, value}, input_index,
                                  decide);
    }
    if (need_backtrack) {
      if (!backtrack_decision(simulator, stack, result.backtracks)) {
        // Exhausted: no input pattern drives the line to `value` — the
        // line is constant at the opposite value.
        result.status = TestStatus::kUntestable;
        break;
      }
      continue;
    }

    ++result.decisions;
    stack.push_back(Decision{input_index, decide, false});
    simulator.assign_input(input_index, decide);
    simulator.imply();
  }

  export_pattern(simulator, options, result);
  return result;
}

TransitionTestResult generate_transition_test(const circuit::Circuit& circuit,
                                              const fault::Fault& fault,
                                              const PodemOptions& options) {
  LSIQ_EXPECT(circuit.finalized(),
              "generate_transition_test: circuit not finalized");
  TransitionTestResult result;

  // Launch first: justification is the cheaper solve, and its failure is
  // the stronger statement — the transition itself can never occur. The
  // pre-transition value is the capture stuck value (slow-to-rise
  // launches at 0, slow-to-fall at 1); the launch condition lives on the
  // fault's line (the driving stem for a branch fault), matching
  // TwoPatternWindow's gating.
  const circuit::GateId line = fault::fault_line(circuit, fault);
  const Tri launch_value = fault.stuck_at_one ? Tri::kOne : Tri::kZero;

  // Both halves consult the implication engine; build it once here rather
  // than once per half when the caller did not share one.
  std::optional<circuit::CompiledCircuit> owned_compiled;
  std::optional<analyze::ImplicationEngine> owned_engine;
  PodemOptions shared_options = options;
  shared_options.implications =
      resolve_engine(circuit, options, owned_compiled, owned_engine);

  PodemOptions launch_options = shared_options;
  // Decorrelate the two patterns' X-fill so launch == capture only where
  // the cubes require it.
  launch_options.fill_seed = options.fill_seed ^ 0x9e3779b97f4a7c15ULL;
  const PodemResult launch =
      justify_line(circuit, line, launch_value, launch_options);
  result.backtracks = launch.backtracks;
  result.decisions = launch.decisions;
  if (launch.status != TestStatus::kDetected) {
    result.status = launch.status;
    if (launch.status == TestStatus::kUntestable) {
      result.untestable_reason = UntestableReason::kLaunch;
    }
    return result;
  }

  // Capture: under the gross-delay abstraction the fault behaves as the
  // matching stuck-at on the capture pattern, and the Fault record IS
  // that stuck-at in the fault_model encoding — plain PODEM solves it.
  const PodemResult capture = generate_test(circuit, fault, shared_options);
  result.backtracks += capture.backtracks;
  result.decisions += capture.decisions;
  if (capture.status != TestStatus::kDetected) {
    result.status = capture.status;
    if (capture.status == TestStatus::kUntestable) {
      result.untestable_reason = UntestableReason::kCapture;
    }
    return result;
  }

  result.status = TestStatus::kDetected;
  result.launch = launch.pattern;
  result.capture = capture.pattern;
  result.launch_cube = launch.cube;
  result.capture_cube = capture.cube;
  return result;
}

}  // namespace lsiq::tpg
