#include "tpg/podem.hpp"

#include <algorithm>

#include "sim/five_value_sim.hpp"
#include "tpg/scoap.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace lsiq::tpg {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateId;
using circuit::GateType;
using sim::FiveValue;
using sim::FiveValueSimulator;
using sim::Tri;

namespace {

/// A requested (signal, value) pair to be traced back to a primary input.
struct Objective {
  GateId gate = circuit::kNoGate;
  Tri value = Tri::kX;
};

/// One entry of the PODEM decision stack.
struct Decision {
  std::size_t input_index;
  Tri value;
  bool flipped;  ///< both branches tried?
};

bool x_good(const FiveValueSimulator& simulator, GateId id) {
  return sim::has_x(simulator.value(id));
}

/// Map a gate type onto (core, inverting): NAND -> AND core + inversion etc.
bool inverting_core(GateType type) {
  return type == GateType::kNot || type == GateType::kNand ||
         type == GateType::kNor || type == GateType::kXnor;
}

/// Non-controlling value of the gate's core function (AND -> 1, OR -> 0).
/// XOR has none; 1 is returned as an arbitrary-but-fixed choice.
Tri non_controlling(GateType type) {
  switch (type) {
    case GateType::kAnd:
    case GateType::kNand:
      return Tri::kOne;
    case GateType::kOr:
    case GateType::kNor:
      return Tri::kZero;
    default:
      return Tri::kOne;
  }
}

/// Choose the next objective, or return false when the search state is a
/// dead end that requires backtracking.
bool pick_objective(const FiveValueSimulator& simulator,
                    const Circuit& circuit, Objective& objective) {
  // Phase 1: activation. The good machine must drive the faulted line to
  // the opposite of the stuck value.
  const GateId line = simulator.fault_line();
  const FiveValue line_value = simulator.value(line);
  const Tri sv = simulator.stuck_at_one() ? Tri::kOne : Tri::kZero;
  if (line_value.good == Tri::kX) {
    objective = {line, sim::tri_not(sv)};
    return true;
  }
  if (line_value.good == sv) {
    return false;  // activation impossible under current assignments
  }

  // Phase 2: propagation. Drive one D-frontier gate's unknown side input to
  // its non-controlling value. Prefer the frontier gate closest to an
  // output (highest level) — the classic distance heuristic.
  const std::vector<GateId> frontier = simulator.d_frontier();
  if (frontier.empty()) {
    return false;
  }
  GateId best = frontier.front();
  for (const GateId id : frontier) {
    if (circuit.gate(id).level > circuit.gate(best).level) {
      best = id;
    }
  }
  const Gate& g = circuit.gate(best);
  for (const GateId in : g.fanin) {
    if (x_good(simulator, in)) {
      objective = {in, non_controlling(g.type)};
      return true;
    }
  }
  return false;  // no X side input: frontier gate cannot be sensitized now
}

/// Trace an objective back to an unassigned pattern input, returning the
/// (input index, value) decision to try.
bool backtrace(const FiveValueSimulator& simulator, const Circuit& circuit,
               const TestabilityMeasures* scoap, Objective objective,
               std::size_t& input_index_out, Tri& value_out) {
  GateId id = objective.gate;
  Tri v = objective.value;

  // Difficulty of driving `gate` to `value`: SCOAP controllability when
  // available, logic level otherwise.
  auto cost = [&](GateId gate, Tri value) -> std::uint64_t {
    if (scoap != nullptr) {
      return value == Tri::kZero ? scoap->cc0[gate] : scoap->cc1[gate];
    }
    return circuit.gate(gate).level;
  };

  // Levels strictly decrease along the walk, so this terminates.
  for (;;) {
    const Gate& g = circuit.gate(id);
    if (g.type == GateType::kInput || g.type == GateType::kDff) {
      const auto& inputs = circuit.pattern_inputs();
      const auto it = std::find(inputs.begin(), inputs.end(), id);
      LSIQ_EXPECT(it != inputs.end(), "backtrace: source is not an input");
      input_index_out = static_cast<std::size_t>(it - inputs.begin());
      value_out = v;
      return true;
    }
    if (inverting_core(g.type)) {
      v = sim::tri_not(v);
    }

    // Choose an X fanin. If v is the controlling-side requirement (one
    // input suffices), take the easiest; if every input must comply, take
    // the hardest first to fail fast.
    const bool controlling_request = (v != non_controlling(g.type));
    GateId chosen = circuit::kNoGate;
    for (const GateId in : g.fanin) {
      if (!x_good(simulator, in)) continue;
      if (chosen == circuit::kNoGate) {
        chosen = in;
        continue;
      }
      const std::uint64_t cost_in = cost(in, v);
      const std::uint64_t cost_ch = cost(chosen, v);
      if ((controlling_request && cost_in < cost_ch) ||
          (!controlling_request && cost_in > cost_ch)) {
        chosen = in;
      }
    }
    if (chosen == circuit::kNoGate) {
      return false;  // no X path toward inputs from this objective
    }
    id = chosen;
  }
}

}  // namespace

PodemResult generate_test(const Circuit& circuit, const fault::Fault& fault,
                          const PodemOptions& options) {
  LSIQ_EXPECT(circuit.finalized(), "generate_test: circuit not finalized");
  PodemResult result;

  FiveValueSimulator simulator(circuit);
  simulator.set_fault(fault.gate, fault.pin, fault.stuck_at_one);
  simulator.imply();

  std::vector<Decision> stack;
  const std::size_t input_count = circuit.pattern_inputs().size();

  auto dead_end = [&]() {
    // The current assignment cannot be extended to a test.
    if (!simulator.activation_possible()) return true;
    if (simulator.fault_effect_observed()) return false;
    const FiveValue line = simulator.value(simulator.fault_line());
    const bool activated = sim::is_d_or_dbar(line) ||
                           (!sim::has_x(line) &&
                            line.good != (simulator.stuck_at_one()
                                              ? Tri::kOne
                                              : Tri::kZero));
    if (activated && simulator.d_frontier().empty()) return true;
    if (activated && !simulator.x_path_exists()) return true;
    return false;
  };

  auto backtrack = [&]() -> bool {
    ++result.backtracks;
    while (!stack.empty()) {
      Decision& top = stack.back();
      if (!top.flipped) {
        top.flipped = true;
        top.value = sim::tri_not(top.value);
        simulator.assign_input(top.input_index, top.value);
        simulator.imply();
        return true;
      }
      simulator.assign_input(top.input_index, Tri::kX);
      stack.pop_back();
    }
    simulator.imply();
    return false;  // decision tree exhausted
  };

  for (;;) {
    if (simulator.fault_effect_observed()) {
      result.status = TestStatus::kDetected;
      break;
    }
    if (result.backtracks > options.max_backtracks) {
      result.status = TestStatus::kAborted;
      break;
    }

    bool need_backtrack = dead_end();
    Objective objective;
    std::size_t input_index = 0;
    Tri value = Tri::kX;
    if (!need_backtrack) {
      need_backtrack = !pick_objective(simulator, circuit, objective) ||
                       !backtrace(simulator, circuit, options.scoap,
                                  objective, input_index, value);
    }

    if (need_backtrack) {
      if (!backtrack()) {
        result.status = TestStatus::kUntestable;
        break;
      }
      continue;
    }

    ++result.decisions;
    stack.push_back(Decision{input_index, value, false});
    simulator.assign_input(input_index, value);
    simulator.imply();
  }

  // Export the cube and a fully specified pattern.
  result.cube.assign(input_count, -1);
  if (result.status == TestStatus::kDetected) {
    util::Rng fill(options.fill_seed);
    result.pattern.assign(input_count, false);
    for (std::size_t i = 0; i < input_count; ++i) {
      const Tri a = simulator.input_assignment(i);
      if (a == Tri::kX) {
        result.pattern[i] = options.random_fill ? fill.bernoulli(0.5) : false;
      } else {
        result.cube[i] = (a == Tri::kOne) ? 1 : 0;
        result.pattern[i] = (a == Tri::kOne);
      }
    }
  }
  return result;
}

}  // namespace lsiq::tpg
