#include "tpg/atpg.hpp"

#include <algorithm>

#include "sim/parallel_sim.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace lsiq::tpg {

using fault::Fault;
using fault::FaultList;
using fault::FaultSimResult;
using sim::PatternSet;

AtpgResult generate_tests(const FaultList& faults,
                          const AtpgOptions& options) {
  // PODEM activates and propagates a stuck value with no launch
  // condition; handing it a transition universe would silently generate
  // for the capture faults only. flow::validate rejects the combination
  // at the spec level; this guards direct callers.
  LSIQ_EXPECT(faults.model() == fault_model::FaultModel::kStuckAt,
              "generate_tests targets stuck-at universes; transition ATPG "
              "is not implemented");
  const circuit::Circuit& circuit = faults.circuit();
  const std::size_t input_count = circuit.pattern_inputs().size();

  AtpgResult result{PatternSet(input_count)};
  std::vector<char> detected(faults.class_count(), 0);

  // ---- Phase 1: random patterns ----
  if (options.random_patterns > 0) {
    util::Rng rng(options.seed);
    PatternSet random_set(input_count);
    random_set.append_random(options.random_patterns, rng);
    const FaultSimResult sim_result =
        fault::simulate_ppsfp(faults, random_set);
    // Keep only the patterns that first-detected something (cheap static
    // compaction of the random phase), preserving order.
    std::vector<char> keep(random_set.size(), 0);
    for (std::size_t c = 0; c < faults.class_count(); ++c) {
      if (sim_result.first_detection[c] >= 0) {
        detected[c] = 1;
        keep[static_cast<std::size_t>(sim_result.first_detection[c])] = 1;
      }
    }
    for (std::size_t p = 0; p < random_set.size(); ++p) {
      if (keep[p] != 0) {
        result.patterns.append(random_set.pattern(p));
      }
    }
  }

  // ---- Phase 2: PODEM on the survivors, with fault dropping ----
  sim::ParallelSimulator good_sim(circuit);
  fault::Propagator propagator(good_sim.compiled());
  std::size_t redundant_faults = 0;  // weighted by class size
  for (std::size_t c = 0; c < faults.class_count(); ++c) {
    if (detected[c] != 0) continue;
    const Fault& target = faults.representatives()[c];
    const PodemResult podem = generate_test(circuit, target, options.podem);
    switch (podem.status) {
      case TestStatus::kUntestable:
        ++result.redundant_classes;
        redundant_faults += faults.class_size(c);
        continue;
      case TestStatus::kAborted:
        ++result.aborted_classes;
        continue;
      case TestStatus::kDetected:
        break;
    }

    // Simulate the new pattern against every remaining fault and drop all
    // detections (the generated pattern usually covers several).
    std::vector<std::uint64_t> words(input_count);
    for (std::size_t i = 0; i < input_count; ++i) {
      words[i] = podem.pattern[i] ? 1ULL : 0ULL;
    }
    good_sim.simulate_block(words);
    propagator.begin_block(good_sim.values());
    bool detected_target = false;
    for (std::size_t c2 = c; c2 < faults.class_count(); ++c2) {
      if (detected[c2] != 0) continue;
      const std::uint64_t word = propagator.detect_word(
          faults.representatives()[c2], good_sim.values());
      if ((word & 1ULL) != 0) {
        detected[c2] = 1;
        if (c2 == c) detected_target = true;
      }
    }
    // PODEM guarantees detection; a miss here would be an engine bug.
    LSIQ_EXPECT(detected_target,
                "generate_tests: PODEM pattern failed confirmation for " +
                    fault::fault_name(circuit, target));
    result.patterns.append(podem.pattern);
  }

  std::size_t covered = 0;
  for (std::size_t c = 0; c < faults.class_count(); ++c) {
    if (detected[c] != 0) {
      ++result.detected_classes;
      covered += faults.class_size(c);
    }
  }

  result.coverage = static_cast<double>(covered) /
                    static_cast<double>(faults.fault_count());
  // Effective coverage drops proven-redundant faults from the denominator
  // (Section 1: redundant faults "could be ignored" given a redundancy
  // proof — PODEM exhausting its decision tree is that proof).
  const double effective_denominator =
      static_cast<double>(faults.fault_count() - redundant_faults);
  result.effective_coverage =
      effective_denominator > 0.0
          ? static_cast<double>(covered) / effective_denominator
          : 1.0;
  return result;
}

PatternSet reverse_order_compact(const FaultList& faults,
                                 const PatternSet& patterns) {
  const circuit::Circuit& circuit = faults.circuit();
  if (patterns.empty()) return patterns;

  // Reverse the pattern order, fault-simulate with dropping, and keep the
  // patterns that first-detect at least one class.
  PatternSet reversed(patterns.input_count());
  for (std::size_t p = patterns.size(); p > 0; --p) {
    reversed.append(patterns.pattern(p - 1));
  }
  const FaultSimResult sim_result = fault::simulate_ppsfp(faults, reversed);

  std::vector<char> keep_reversed(reversed.size(), 0);
  for (std::size_t c = 0; c < faults.class_count(); ++c) {
    if (sim_result.first_detection[c] >= 0) {
      keep_reversed[static_cast<std::size_t>(
          sim_result.first_detection[c])] = 1;
    }
  }
  PatternSet out(patterns.input_count());
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    const std::size_t reversed_index = patterns.size() - 1 - p;
    if (keep_reversed[reversed_index] != 0) {
      out.append(patterns.pattern(p));
    }
  }
  LSIQ_EXPECT(circuit.finalized(), "reverse_order_compact: internal");
  return out;
}

}  // namespace lsiq::tpg
