#include "tpg/atpg.hpp"

#include <algorithm>
#include <bit>
#include <optional>

#include "analyze/implication.hpp"
#include "fault_model/transition.hpp"
#include "sim/parallel_sim.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace lsiq::tpg {

using fault::Fault;
using fault::FaultList;
using fault::FaultSimResult;
using sim::PatternSet;

namespace {

/// Shared epilogue of both generation paths: per-class detection flags and
/// the redundancy-weighted denominators into coverage figures.
void finalize_coverage(const FaultList& faults,
                       const std::vector<char>& detected,
                       std::size_t redundant_faults, AtpgResult& result) {
  std::size_t covered = 0;
  for (std::size_t c = 0; c < faults.class_count(); ++c) {
    if (detected[c] != 0) {
      ++result.detected_classes;
      covered += faults.class_size(c);
    }
  }

  result.coverage = static_cast<double>(covered) /
                    static_cast<double>(faults.fault_count());
  // Effective coverage drops proven-redundant faults from the denominator
  // (Section 1: redundant faults "could be ignored" given a redundancy
  // proof — PODEM exhausting its decision tree is that proof).
  const double effective_denominator =
      static_cast<double>(faults.fault_count() - redundant_faults);
  result.effective_coverage =
      effective_denominator > 0.0
          ? static_cast<double>(covered) / effective_denominator
          : 1.0;
}

/// The classic single-pattern recipe over a stuck-at universe.
AtpgResult generate_stuck_at_tests(const FaultList& faults,
                                   const AtpgOptions& options) {
  const circuit::Circuit& circuit = faults.circuit();
  const std::size_t input_count = circuit.pattern_inputs().size();

  AtpgResult result{PatternSet(input_count)};
  std::vector<char> detected(faults.class_count(), 0);

  // ---- Phase 1: random patterns ----
  if (options.random_patterns > 0) {
    util::Rng rng(options.seed);
    PatternSet random_set(input_count);
    random_set.append_random(options.random_patterns, rng);
    const FaultSimResult sim_result =
        fault::simulate_ppsfp(faults, random_set);
    // Keep only the patterns that first-detected something (cheap static
    // compaction of the random phase), preserving order.
    std::vector<char> keep(random_set.size(), 0);
    for (std::size_t c = 0; c < faults.class_count(); ++c) {
      if (sim_result.first_detection[c] >= 0) {
        detected[c] = 1;
        keep[static_cast<std::size_t>(sim_result.first_detection[c])] = 1;
      }
    }
    for (std::size_t p = 0; p < random_set.size(); ++p) {
      if (keep[p] != 0) {
        result.patterns.append(random_set.pattern(p));
      }
    }
  }

  // ---- Phase 2: PODEM on the survivors, with fault dropping ----
  sim::ParallelSimulator good_sim(circuit);
  fault::Propagator propagator(good_sim.compiled());
  // One implication engine for the whole run: the static learning pass is
  // per-circuit work, not per-fault work.
  PodemOptions podem_options = options.podem;
  std::optional<analyze::ImplicationEngine> shared_engine;
  if (podem_options.use_implications &&
      podem_options.implications == nullptr) {
    shared_engine.emplace(*good_sim.compiled());
    podem_options.implications = &*shared_engine;
  }
  std::size_t redundant_faults = 0;  // weighted by class size
  for (std::size_t c = 0; c < faults.class_count(); ++c) {
    if (detected[c] != 0) continue;
    const Fault& target = faults.representatives()[c];
    const PodemResult podem = generate_test(circuit, target, podem_options);
    result.total_backtracks += podem.backtracks;
    result.total_decisions += podem.decisions;
    switch (podem.status) {
      case TestStatus::kUntestable:
        ++result.redundant_classes;
        redundant_faults += faults.class_size(c);
        continue;
      case TestStatus::kAborted:
        ++result.aborted_classes;
        continue;
      case TestStatus::kDetected:
        break;
    }

    // Simulate the new pattern against every remaining fault and drop all
    // detections (the generated pattern usually covers several).
    std::vector<std::uint64_t> words(input_count);
    for (std::size_t i = 0; i < input_count; ++i) {
      words[i] = podem.pattern[i] ? 1ULL : 0ULL;
    }
    good_sim.simulate_block(words);
    propagator.begin_block(good_sim.values());
    bool detected_target = false;
    for (std::size_t c2 = c; c2 < faults.class_count(); ++c2) {
      if (detected[c2] != 0) continue;
      const std::uint64_t word = propagator.detect_word(
          faults.representatives()[c2], good_sim.values());
      if ((word & 1ULL) != 0) {
        detected[c2] = 1;
        if (c2 == c) detected_target = true;
      }
    }
    // PODEM guarantees detection; a miss here would be an engine bug.
    LSIQ_EXPECT(detected_target,
                "generate_tests: PODEM pattern failed confirmation for " +
                    fault::fault_name(circuit, target));
    result.patterns.append(podem.pattern);
  }

  finalize_coverage(faults, detected, redundant_faults, result);
  return result;
}

/// The two-pattern recipe over a transition universe: the random phase
/// grades consecutive launch/capture pairs and keeps both halves of every
/// first-detecting pair (they stay adjacent, so the detection survives
/// the compaction); the deterministic phase appends an ordered (launch,
/// capture) pair per survivor and drops every remaining fault the new
/// pair detects.
AtpgResult generate_transition_tests(const FaultList& faults,
                                     const AtpgOptions& options) {
  const circuit::Circuit& circuit = faults.circuit();
  const std::size_t input_count = circuit.pattern_inputs().size();

  AtpgResult result{PatternSet(input_count)};
  std::vector<char> detected(faults.class_count(), 0);

  // ---- Phase 1: random patterns, graded as consecutive pairs ----
  if (options.random_patterns > 1) {
    util::Rng rng(options.seed);
    PatternSet random_set(input_count);
    random_set.append_random(options.random_patterns, rng);
    const FaultSimResult sim_result =
        fault::simulate_ppsfp(faults, random_set);
    // A first detection at pattern p means the PAIR (p-1, p) detects the
    // class: keep both halves. Kept pairs remain adjacent in the
    // compacted program (dropping patterns between pairs only creates new
    // seam pairs, which can add detections but never remove these).
    std::vector<char> keep(random_set.size(), 0);
    for (std::size_t c = 0; c < faults.class_count(); ++c) {
      if (sim_result.first_detection[c] >= 0) {
        const auto p =
            static_cast<std::size_t>(sim_result.first_detection[c]);
        detected[c] = 1;
        keep[p] = 1;
        keep[p - 1] = 1;  // p >= 1: the first pattern has no launch
      }
    }
    for (std::size_t p = 0; p < random_set.size(); ++p) {
      if (keep[p] != 0) {
        result.patterns.append(random_set.pattern(p));
      }
    }
  }

  // ---- Phase 2: two-pattern PODEM on the survivors, with dropping ----
  sim::ParallelSimulator good_sim(circuit);
  fault::Propagator propagator(good_sim.compiled());
  // Confirmation grades each emitted pair as a standalone 2-pattern
  // block: the window is never advanced, so lane 0 (the launch, which
  // has no predecessor) stays masked and only lane 1 — capture detection
  // gated by the launch — counts.
  const fault_model::TwoPatternWindow pair_window(
      propagator.compiled()->node_count());
  // One implication engine for the whole run, shared by both halves of
  // every pair solve.
  PodemOptions podem_options = options.podem;
  std::optional<analyze::ImplicationEngine> shared_engine;
  if (podem_options.use_implications &&
      podem_options.implications == nullptr) {
    shared_engine.emplace(*good_sim.compiled());
    podem_options.implications = &*shared_engine;
  }
  std::size_t redundant_faults = 0;  // weighted by class size
  for (std::size_t c = 0; c < faults.class_count(); ++c) {
    if (detected[c] != 0) continue;
    const Fault& target = faults.representatives()[c];
    const TransitionTestResult test =
        generate_transition_test(circuit, target, podem_options);
    result.total_backtracks += test.backtracks;
    result.total_decisions += test.decisions;
    switch (test.status) {
      case TestStatus::kUntestable:
        ++result.redundant_classes;
        if (test.untestable_reason == UntestableReason::kLaunch) {
          ++result.untestable_launch_classes;
        } else {
          ++result.untestable_capture_classes;
        }
        redundant_faults += faults.class_size(c);
        continue;
      case TestStatus::kAborted:
        ++result.aborted_classes;
        continue;
      case TestStatus::kDetected:
        break;
    }

    // Simulate the pair (launch in lane 0, capture in lane 1) against
    // every remaining fault and drop all detections. Lanes >= 2 replicate
    // an all-zero pattern, so only the capture lane is credited.
    std::vector<std::uint64_t> words(input_count);
    for (std::size_t i = 0; i < input_count; ++i) {
      words[i] = (test.launch[i] ? 1ULL : 0ULL) |
                 (test.capture[i] ? 2ULL : 0ULL);
    }
    good_sim.simulate_block(words);
    propagator.begin_block(good_sim.values());
    bool detected_target = false;
    for (std::size_t c2 = c; c2 < faults.class_count(); ++c2) {
      if (detected[c2] != 0) continue;
      const std::uint64_t word = propagator.detect_word_transition(
          faults.representatives()[c2], good_sim.values(), pair_window);
      if ((word & 2ULL) != 0) {
        detected[c2] = 1;
        if (c2 == c) detected_target = true;
      }
    }
    // The capture pattern detects the matching stuck-at by PODEM's
    // guarantee and the launch pattern justifies the launch value, so the
    // pair must confirm; a miss here would be an engine bug.
    LSIQ_EXPECT(detected_target,
                "generate_tests: transition pair failed confirmation for " +
                    fault::fault_name(circuit, target,
                                      fault_model::FaultModel::kTransition));
    result.patterns.append(test.launch);
    result.patterns.append(test.capture);
  }

  finalize_coverage(faults, detected, redundant_faults, result);
  return result;
}

/// Classic reverse-order compaction for one-pattern (stuck-at) programs.
PatternSet compact_stuck_at(const FaultList& faults,
                            const PatternSet& patterns) {
  // Reverse the pattern order, fault-simulate with dropping, and keep the
  // patterns that first-detect at least one class.
  PatternSet reversed(patterns.input_count());
  for (std::size_t p = patterns.size(); p > 0; --p) {
    reversed.append(patterns.pattern(p - 1));
  }
  const FaultSimResult sim_result = fault::simulate_ppsfp(faults, reversed);

  std::vector<char> keep_reversed(reversed.size(), 0);
  for (std::size_t c = 0; c < faults.class_count(); ++c) {
    if (sim_result.first_detection[c] >= 0) {
      keep_reversed[static_cast<std::size_t>(
          sim_result.first_detection[c])] = 1;
    }
  }
  PatternSet out(patterns.input_count());
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    const std::size_t reversed_index = patterns.size() - 1 - p;
    if (keep_reversed[reversed_index] != 0) {
      out.append(patterns.pattern(p));
    }
  }
  return out;
}

/// Pair-aware compaction for two-pattern (transition) programs. Reversing
/// the program would scramble every launch/capture pair, so the reverse
/// pass works on PAIRS instead: grade the whole program once (no
/// dropping), then walk the capture indices back to front and keep both
/// halves of the last pair that detects each still-uncovered class. Kept
/// pairs stay adjacent in the output, so every credited detection
/// survives; seams between kept pairs can only add detections.
PatternSet compact_transition(const FaultList& faults,
                              const PatternSet& patterns) {
  const circuit::Circuit& circuit = faults.circuit();

  // The reverse greedy below keeps exactly the pair at each class's LAST
  // detecting capture index, so one O(class_count) vector of last
  // detections — updated as the forward grading pass walks the blocks —
  // carries everything the selection needs (no classes-by-blocks
  // detection matrix).
  sim::ParallelSimulator good_sim(circuit);
  fault::Propagator propagator(good_sim.compiled());
  fault_model::TwoPatternWindow window(
      propagator.compiled()->node_count());
  std::vector<std::int64_t> last_detection(faults.class_count(), -1);
  for (std::size_t b = 0; b < patterns.block_count(); ++b) {
    good_sim.simulate_block(patterns.block_words(b));
    const std::vector<std::uint64_t>& good = good_sim.values();
    propagator.begin_block(good);
    const std::uint64_t mask = patterns.block_mask(b);
    for (std::size_t c = 0; c < faults.class_count(); ++c) {
      const std::uint64_t word =
          propagator.detect_word_transition(faults.representatives()[c],
                                            good, window) &
          mask;
      if (word != 0) {
        last_detection[c] = static_cast<std::int64_t>(
            b * 64 + (63 - static_cast<std::size_t>(
                               std::countl_zero(word))));
      }
    }
    window.advance(good);
  }

  // Keep both halves of each selected pair. A capture index is always
  // >= 1: pattern 0 has no launch (the window masks lane 0 of block 0).
  std::vector<char> keep(patterns.size(), 0);
  for (std::size_t c = 0; c < faults.class_count(); ++c) {
    if (last_detection[c] < 0) continue;
    const auto p = static_cast<std::size_t>(last_detection[c]);
    keep[p] = 1;
    keep[p - 1] = 1;
  }

  PatternSet out(patterns.input_count());
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    if (keep[p] != 0) {
      out.append(patterns.pattern(p));
    }
  }
  return out;
}

}  // namespace

AtpgResult generate_tests(const FaultList& faults,
                          const AtpgOptions& options) {
  // One entry point, two recipes: the list's model tag selects single-
  // pattern stuck-at generation or two-pattern launch/capture generation.
  if (faults.model() == fault_model::FaultModel::kTransition) {
    return generate_transition_tests(faults, options);
  }
  return generate_stuck_at_tests(faults, options);
}

PatternSet reverse_order_compact(const FaultList& faults,
                                 const PatternSet& patterns) {
  LSIQ_EXPECT(faults.circuit().finalized(),
              "reverse_order_compact: internal");
  if (patterns.empty()) return patterns;
  if (faults.model() == fault_model::FaultModel::kTransition) {
    return compact_transition(faults, patterns);
  }
  return compact_stuck_at(faults, patterns);
}

}  // namespace lsiq::tpg
