#include "tpg/lfsr.hpp"

#include "util/error.hpp"
#include "util/rng.hpp"

namespace lsiq::tpg {

/// Maximal-length feedback masks (taps at the positions of the polynomial's
/// nonzero coefficients, excluding x^width). Standard published taps; the
/// small widths exist for MISRs whose aliasing should be observable.
std::uint64_t maximal_taps(int width) {
  switch (width) {
    case 4:  return 0xCULL;                 // x^4 + x^3 + 1
    case 8:  return 0xB8ULL;                // x^8 + x^6 + x^5 + x^4 + 1
    case 16: return 0xB400ULL;              // x^16 + x^14 + x^13 + x^11 + 1
    case 24: return 0xE10000ULL;            // x^24 + x^23 + x^22 + x^17 + 1
    case 32: return 0x80200003ULL;          // x^32 + x^22 + x^2 + x + 1
    case 48: return 0xC00000180000ULL;      // x^48 + x^47 + x^21 + x^20 + 1
    case 64: return 0xD800000000000000ULL;  // x^64 + x^63 + x^61 + x^60 + 1
    default:
      throw Error("maximal_taps: unsupported width " +
                  std::to_string(width) +
                  " (use 4, 8, 16, 24, 32, 48 or 64)");
  }
}

bool has_maximal_taps(int width) noexcept {
  switch (width) {
    case 4: case 8: case 16: case 24: case 32: case 48: case 64:
      return true;
    default:
      return false;
  }
}

Lfsr::Lfsr(int width, std::uint64_t seed)
    : width_(width),
      taps_(maximal_taps(width)),
      mask_(width == 64 ? ~0ULL : ((1ULL << width) - 1)),
      state_(seed & mask_) {
  if (state_ == 0) {
    state_ = 1;  // the all-zero state is the one fixed point; avoid it
  }
}

bool Lfsr::next_bit() {
  const bool out = (state_ & 1ULL) != 0;
  state_ >>= 1;
  if (out) {
    state_ ^= taps_;
  }
  state_ &= mask_;
  return out;
}

std::uint64_t Lfsr::period() const noexcept {
  if (width_ == 64) return ~0ULL;  // 2^64 - 1
  return (1ULL << width_) - 1;
}

sim::PatternSet lfsr_patterns(std::size_t input_count, std::size_t count,
                              std::uint64_t seed, int width) {
  LSIQ_EXPECT(input_count > 0, "lfsr_patterns: input_count must be > 0");
  Lfsr lfsr(width, seed);
  sim::PatternSet patterns(input_count);
  std::vector<bool> p(input_count);
  for (std::size_t n = 0; n < count; ++n) {
    for (std::size_t i = 0; i < input_count; ++i) {
      p[i] = lfsr.next_bit();
    }
    patterns.append(p);
  }
  return patterns;
}

sim::PatternSet random_walk_patterns(std::size_t input_count,
                                     std::size_t count,
                                     std::size_t flips_per_step,
                                     std::uint64_t seed) {
  LSIQ_EXPECT(input_count > 0, "random_walk_patterns: input_count > 0");
  LSIQ_EXPECT(flips_per_step >= 1 && flips_per_step <= input_count,
              "random_walk_patterns: flips_per_step in [1, input_count]");
  util::Rng rng(seed);
  sim::PatternSet patterns(input_count);
  std::vector<bool> state(input_count, false);
  for (std::size_t n = 0; n < count; ++n) {
    patterns.append(state);
    for (const std::uint64_t bit :
         rng.sample_without_replacement(input_count, flips_per_step)) {
      state[static_cast<std::size_t>(bit)] =
          !state[static_cast<std::size_t>(bit)];
    }
  }
  return patterns;
}

}  // namespace lsiq::tpg
