#include "tpg/scoap.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace lsiq::tpg {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateId;
using circuit::GateType;

namespace {

std::uint32_t saturating_add(std::uint32_t a, std::uint32_t b) {
  const std::uint64_t sum =
      static_cast<std::uint64_t>(a) + static_cast<std::uint64_t>(b);
  return sum >= kScoapInfinity ? kScoapInfinity
                               : static_cast<std::uint32_t>(sum);
}

/// Fold an n-ary XOR's controllability pairwise: to produce parity p over
/// (sub-result, next input), choose the cheaper of the two value splits.
void xor_fold(std::uint32_t& c0, std::uint32_t& c1, std::uint32_t in0,
              std::uint32_t in1) {
  const std::uint32_t next0 =
      std::min(saturating_add(c0, in0), saturating_add(c1, in1));
  const std::uint32_t next1 =
      std::min(saturating_add(c0, in1), saturating_add(c1, in0));
  c0 = next0;
  c1 = next1;
}

}  // namespace

TestabilityMeasures compute_scoap(const Circuit& circuit) {
  LSIQ_EXPECT(circuit.finalized(), "compute_scoap requires finalize()");
  TestabilityMeasures m;
  m.cc0.assign(circuit.gate_count(), kScoapInfinity);
  m.cc1.assign(circuit.gate_count(), kScoapInfinity);
  m.observability.assign(circuit.gate_count(), kScoapInfinity);

  // ---- forward pass: controllability ----
  for (const GateId id : circuit.topological_order()) {
    const Gate& g = circuit.gate(id);
    std::uint32_t& c0 = m.cc0[id];
    std::uint32_t& c1 = m.cc1[id];
    switch (g.type) {
      case GateType::kInput:
      case GateType::kDff:  // scan-loadable: as controllable as a PI
        c0 = 1;
        c1 = 1;
        break;
      case GateType::kConst0:
        c0 = 0;
        c1 = kScoapInfinity;  // can never be 1
        break;
      case GateType::kConst1:
        c0 = kScoapInfinity;
        c1 = 0;
        break;
      case GateType::kBuf:
        c0 = saturating_add(m.cc0[g.fanin[0]], 1);
        c1 = saturating_add(m.cc1[g.fanin[0]], 1);
        break;
      case GateType::kNot:
        c0 = saturating_add(m.cc1[g.fanin[0]], 1);
        c1 = saturating_add(m.cc0[g.fanin[0]], 1);
        break;
      case GateType::kAnd:
      case GateType::kNand: {
        // AND core: 1 needs every input 1; 0 needs the cheapest input 0.
        std::uint32_t all_one = 0;
        std::uint32_t min_zero = kScoapInfinity;
        for (const GateId in : g.fanin) {
          all_one = saturating_add(all_one, m.cc1[in]);
          min_zero = std::min(min_zero, m.cc0[in]);
        }
        const std::uint32_t core1 = saturating_add(all_one, 1);
        const std::uint32_t core0 = saturating_add(min_zero, 1);
        if (g.type == GateType::kAnd) {
          c0 = core0;
          c1 = core1;
        } else {
          c0 = core1;
          c1 = core0;
        }
        break;
      }
      case GateType::kOr:
      case GateType::kNor: {
        std::uint32_t all_zero = 0;
        std::uint32_t min_one = kScoapInfinity;
        for (const GateId in : g.fanin) {
          all_zero = saturating_add(all_zero, m.cc0[in]);
          min_one = std::min(min_one, m.cc1[in]);
        }
        const std::uint32_t core0 = saturating_add(all_zero, 1);
        const std::uint32_t core1 = saturating_add(min_one, 1);
        if (g.type == GateType::kOr) {
          c0 = core0;
          c1 = core1;
        } else {
          c0 = core1;
          c1 = core0;
        }
        break;
      }
      case GateType::kXor:
      case GateType::kXnor: {
        std::uint32_t x0 = m.cc0[g.fanin[0]];
        std::uint32_t x1 = m.cc1[g.fanin[0]];
        for (std::size_t i = 1; i < g.fanin.size(); ++i) {
          xor_fold(x0, x1, m.cc0[g.fanin[i]], m.cc1[g.fanin[i]]);
        }
        const std::uint32_t core0 = saturating_add(x0, 1);
        const std::uint32_t core1 = saturating_add(x1, 1);
        if (g.type == GateType::kXor) {
          c0 = core0;
          c1 = core1;
        } else {
          c0 = core1;
          c1 = core0;
        }
        break;
      }
    }
  }

  // ---- backward pass: observability ----
  for (const GateId point : circuit.observed_points()) {
    m.observability[point] = 0;
  }
  const auto& order = circuit.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const GateId id = *it;
    const Gate& g = circuit.gate(id);
    if (g.type == GateType::kInput || g.type == GateType::kDff) {
      // Sources propagate observability to nothing; their own value was
      // set above if they are observed / computed from fanout below.
    }
    const std::uint32_t out_obs = m.observability[id];
    if (out_obs >= kScoapInfinity && g.fanin.empty()) continue;

    // Observability of each fanin through this gate: the gate must pass
    // the value (side inputs at non-controlling values) and the output
    // must itself be observable.
    for (std::size_t pin = 0; pin < g.fanin.size(); ++pin) {
      std::uint32_t through = kScoapInfinity;
      switch (g.type) {
        case GateType::kBuf:
        case GateType::kNot:
          through = saturating_add(out_obs, 1);
          break;
        case GateType::kAnd:
        case GateType::kNand: {
          std::uint32_t side = 0;
          for (std::size_t other = 0; other < g.fanin.size(); ++other) {
            if (other == pin) continue;
            side = saturating_add(side, m.cc1[g.fanin[other]]);
          }
          through = saturating_add(saturating_add(out_obs, side), 1);
          break;
        }
        case GateType::kOr:
        case GateType::kNor: {
          std::uint32_t side = 0;
          for (std::size_t other = 0; other < g.fanin.size(); ++other) {
            if (other == pin) continue;
            side = saturating_add(side, m.cc0[g.fanin[other]]);
          }
          through = saturating_add(saturating_add(out_obs, side), 1);
          break;
        }
        case GateType::kXor:
        case GateType::kXnor: {
          // Side inputs must be at known values; the cheaper of 0/1 per
          // side input.
          std::uint32_t side = 0;
          for (std::size_t other = 0; other < g.fanin.size(); ++other) {
            if (other == pin) continue;
            side = saturating_add(
                side, std::min(m.cc0[g.fanin[other]], m.cc1[g.fanin[other]]));
          }
          through = saturating_add(saturating_add(out_obs, side), 1);
          break;
        }
        case GateType::kDff:
          // D pin: captured by scan; already seeded as an observed point
          // (the driver carries observability 0 from the seeding loop).
          through = out_obs;
          break;
        default:
          break;  // sources have no pins
      }
      std::uint32_t& in_obs = m.observability[g.fanin[pin]];
      in_obs = std::min(in_obs, through);  // stem observability: best branch
    }
  }
  return m;
}

std::uint32_t fault_detection_cost(const Circuit& circuit,
                                   const TestabilityMeasures& measures,
                                   const fault::Fault& fault) {
  const GateId line = fault_line(circuit, fault);
  // Activation: drive the line opposite to the stuck value.
  const std::uint32_t activation = fault.stuck_at_one
                                       ? measures.cc0[line]
                                       : measures.cc1[line];
  // Observation: the stem's observability; a branch must additionally pass
  // through its own gate, which the backward pass already folded into the
  // stem minimum — use the faulted gate's output observability plus side
  // conditions approximated by the stem value.
  std::uint32_t observation = measures.observability[line];
  if (!is_stem(fault)) {
    observation = std::max(observation,
                           measures.observability[fault.gate]);
  }
  return saturating_add(activation, observation);
}

}  // namespace lsiq::tpg
