// Linear-feedback shift register pattern source.
//
// Production testers of the paper's era (and BIST hardware since) feed
// circuits from LFSRs rather than true random sources. The generator here
// is a Galois LFSR with maximal-length polynomials, so the pattern stream
// is reproducible hardware-faithful pseudo-randomness.
#pragma once

#include <cstdint>

#include "sim/pattern.hpp"

namespace lsiq::tpg {

/// Maximal-length Galois feedback taps for a supported register width
/// (4, 8, 16, 24, 32, 48, 64) — the polynomial table shared by Lfsr and
/// bist::Misr. Taps are in the right-shift Galois convention: XORed into
/// the register when the shifted-out bit is 1. Throws lsiq::Error for an
/// unsupported width.
std::uint64_t maximal_taps(int width);

/// True when `width` has an entry in the maximal_taps polynomial table —
/// the non-throwing query flow::validate uses to diagnose LFSR/MISR
/// widths before anything is constructed.
bool has_maximal_taps(int width) noexcept;

/// Galois LFSR over one machine word.
class Lfsr {
 public:
  /// width in {4, 8, 16, 24, 32, 48, 64} selects a maximal-length
  /// polynomial (see maximal_taps); seed must be non-zero in the low
  /// `width` bits (fixed up if not).
  explicit Lfsr(int width = 32, std::uint64_t seed = 1);

  /// Advance one step and return the output bit (the bit shifted out).
  bool next_bit();

  /// Current register state (low `width` bits).
  [[nodiscard]] std::uint64_t state() const noexcept { return state_; }

  [[nodiscard]] int width() const noexcept { return width_; }

  /// Sequence period of a maximal-length register: 2^width - 1.
  [[nodiscard]] std::uint64_t period() const noexcept;

 private:
  int width_;
  std::uint64_t taps_;
  std::uint64_t mask_;
  std::uint64_t state_;
};

/// Build a pattern set of `count` patterns over `input_count` inputs by
/// clocking an LFSR `input_count` bits per pattern (scan-style loading).
sim::PatternSet lfsr_patterns(std::size_t input_count, std::size_t count,
                              std::uint64_t seed = 1, int width = 32);

/// Functional-style pattern source: start from the all-zero vector and
/// flip `flips_per_step` randomly chosen input bits per pattern (a random
/// walk over the input cube). Consecutive patterns are highly correlated —
/// the access pattern of 1980s functional programs and of scan-adjacent
/// functional test, and the regime where the event-driven simulator beats
/// the compiled one.
sim::PatternSet random_walk_patterns(std::size_t input_count,
                                     std::size_t count,
                                     std::size_t flips_per_step = 1,
                                     std::uint64_t seed = 1);

}  // namespace lsiq::tpg
