// Complete test-generation flows.
//
// The standard two-phase recipe: a random-pattern phase knocks out the easy
// faults cheaply, then PODEM targets each survivor — producing a test or a
// proof of redundancy. The resulting ordered pattern set is exactly what
// the paper's Section 5 procedure consumes: patterns in tester-application
// order with a cumulative coverage curve from the fault simulator.
//
// Both fault models run through the same entry point, keyed off
// FaultList::model(). A transition universe switches the recipe to
// two-pattern semantics: the random phase grades consecutive
// launch/capture pairs (fault_model/transition.hpp) and keeps both halves
// of every first-detecting pair, and the deterministic phase appends an
// ordered (launch, capture) pair per survivor — so in the emitted program
// a launch pattern is always immediately followed by its capture.
// Redundancy proofs split by half: untestable-launch (the pre-transition
// value is unjustifiable) versus untestable-capture (the matching capture
// stuck-at fault is redundant).
#pragma once

#include <cstdint>

#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "sim/pattern.hpp"
#include "tpg/podem.hpp"

namespace lsiq::tpg {

struct AtpgOptions {
  /// Patterns to try in the random phase (0 disables it).
  std::size_t random_patterns = 256;
  std::uint64_t seed = 1;
  PodemOptions podem;

  friend bool operator==(const AtpgOptions&, const AtpgOptions&) = default;
};

struct AtpgResult {
  sim::PatternSet patterns;
  std::size_t detected_classes = 0;
  std::size_t redundant_classes = 0;   ///< proven untestable
  std::size_t aborted_classes = 0;     ///< backtrack limit hit
  /// Transition-universe redundancy proofs, split by which half of the
  /// two-pattern test was proven impossible (they sum to
  /// redundant_classes; both stay 0 for stuck-at universes).
  std::size_t untestable_launch_classes = 0;
  std::size_t untestable_capture_classes = 0;
  /// Deterministic-phase search effort, summed over every PODEM solve
  /// (both halves of a transition pair) including untestable and aborted
  /// ones. With PodemOptions::use_implications the counts can only drop —
  /// conflict pruning abandons doomed subtrees early — which makes them
  /// the natural regression pin for the implication assist.
  long long total_backtracks = 0;
  long long total_decisions = 0;
  /// Coverage over the full universe, f = m/N (the paper's figure of merit).
  double coverage = 0.0;
  /// Coverage with proven-redundant faults removed from the denominator —
  /// the "if complete design verification could be achieved, the undetected
  /// faults could be ignored as redundant" figure of Section 1.
  double effective_coverage = 0.0;
};

/// Random phase + PODEM phase with fault dropping after every new pattern
/// (new pattern PAIR for a transition universe — see the header comment).
AtpgResult generate_tests(const fault::FaultList& faults,
                          const AtpgOptions& options = {});

/// Reverse-order static compaction: re-fault-simulate the set and keep
/// only patterns needed to preserve every detected fault class. For a
/// stuck-at universe this is the classic reverse simulation (keep the
/// patterns that first-detect something when graded back to front); for a
/// transition universe the unit of selection is the consecutive
/// launch/capture PAIR — both halves of a selected pair are kept, so a
/// launch pattern is never dropped without its capture and every credited
/// pair stays adjacent in the output. Returns the compacted set (original
/// order preserved among survivors); the compacted set detects every
/// class the original set detects.
sim::PatternSet reverse_order_compact(const fault::FaultList& faults,
                                      const sim::PatternSet& patterns);

}  // namespace lsiq::tpg
