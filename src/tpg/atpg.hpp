// Complete test-generation flows.
//
// The standard two-phase recipe: a random-pattern phase knocks out the easy
// faults cheaply, then PODEM targets each survivor — producing a test or a
// proof of redundancy. The resulting ordered pattern set is exactly what
// the paper's Section 5 procedure consumes: patterns in tester-application
// order with a cumulative coverage curve from the fault simulator.
#pragma once

#include <cstdint>

#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "sim/pattern.hpp"
#include "tpg/podem.hpp"

namespace lsiq::tpg {

struct AtpgOptions {
  /// Patterns to try in the random phase (0 disables it).
  std::size_t random_patterns = 256;
  std::uint64_t seed = 1;
  PodemOptions podem;

  friend bool operator==(const AtpgOptions&, const AtpgOptions&) = default;
};

struct AtpgResult {
  sim::PatternSet patterns;
  std::size_t detected_classes = 0;
  std::size_t redundant_classes = 0;   ///< proven untestable
  std::size_t aborted_classes = 0;     ///< backtrack limit hit
  /// Coverage over the full universe, f = m/N (the paper's figure of merit).
  double coverage = 0.0;
  /// Coverage with proven-redundant faults removed from the denominator —
  /// the "if complete design verification could be achieved, the undetected
  /// faults could be ignored as redundant" figure of Section 1.
  double effective_coverage = 0.0;
};

/// Random phase + PODEM phase with fault dropping after every new pattern.
AtpgResult generate_tests(const fault::FaultList& faults,
                          const AtpgOptions& options = {});

/// Reverse-order static compaction: re-fault-simulate the set in reverse
/// and keep only patterns that detect a fault not detected by a later one.
/// Returns the compacted set (original order preserved among survivors).
sim::PatternSet reverse_order_compact(const fault::FaultList& faults,
                                      const sim::PatternSet& patterns);

}  // namespace lsiq::tpg
