// Quality planning across a product portfolio.
//
// A test organization owns several products at different yields and
// defectivity profiles and must allocate test-development effort against a
// shipped-quality budget (DPPM). This example uses the model to produce
// the planning table: per product, the coverage needed for each quality
// class — under the paper's model, its gamma-mixed extension (clustered
// fault counts, ref [15] direction), and the conservative Wadsack rule.
// This is pure closed-form planning — no netlist, no simulation — so it
// sits below the flow API: when a product needs (y, n0) characterized
// from a lot first, run a flow::FlowSpec (see process_characterization)
// and feed the resulting analyzer into tables like these.
#include <iostream>

#include "core/baselines.hpp"
#include "core/coverage_requirement.hpp"
#include "core/reject_model.hpp"
#include "util/table.hpp"

int main() {
  using namespace lsiq;

  struct Product {
    const char* name;
    double yield;
    double n0;
    double alpha;  ///< gamma-mixing shape; smaller = heavier tail
  };
  // A plausible 1981 portfolio: MSI parts at high yield and few faults per
  // defective chip, LSI parts at low yield and many.
  const Product portfolio[] = {
      {"MSI logic    (y=0.80, n0=2)", 0.80, 2.0, 4.0},
      {"mid LSI      (y=0.40, n0=5)", 0.40, 5.0, 3.0},
      {"dense LSI    (y=0.20, n0=8)", 0.20, 8.0, 2.0},
      {"bleeding edge(y=0.07, n0=10)", 0.07, 10.0, 1.5},
  };
  const double targets[] = {0.01, 0.005, 0.001};  // 10000/5000/1000 DPPM

  for (const double r : targets) {
    std::cout << "Target: " << util::format_double(r * 1e6, 0)
              << " DPPM (r = " << util::format_probability(r) << ")\n";
    util::TextTable table({"product", "required f (Poisson)",
                           "required f (mixed)", "Wadsack rule",
                           "reject at 95% f"});
    for (const Product& p : portfolio) {
      table.add_row(
          {p.name,
           util::format_percent(
               quality::required_fault_coverage(r, p.yield, p.n0), 1),
           util::format_percent(
               quality::required_fault_coverage_mixed(r, p.yield, p.n0,
                                                      p.alpha),
               1),
           util::format_percent(
               quality::wadsack_required_coverage(r, p.yield), 1),
           util::format_probability(
               quality::field_reject_rate(0.95, p.yield, p.n0))});
    }
    std::cout << table.to_string() << "\n";
  }

  std::cout
      << "Observations the model turns into policy:\n"
      << "  * the denser the product (higher n0), the LESS coverage a\n"
      << "    quality target needs — the paper's counterintuitive core\n"
      << "    result;\n"
      << "  * clustered fault counts (mixed column) claw back some of\n"
      << "    that relief: heavy tails mean more one-fault chips that\n"
      << "    slip through;\n"
      << "  * Wadsack's rule would send every product to >99% coverage,\n"
      << "    which Section 1 calls unattainable for LSI.\n";
  return 0;
}
