// Stuck-at vs transition product quality, side by side.
//
// The paper turns a fault-coverage figure into a DPPM statement — but the
// statement is only as meaningful as the fault universe the coverage was
// measured on. This example runs ONE flow spec twice, differing only in
// the fault_model axis, against the same product, pattern program and
// virtual lot, and prints the two quality statements next to each other:
//
//   * the Table-1 strobe readout per model (the same tester bring-up read
//     against the two coverage curves),
//   * the per-model characterization (the estimators see each model's own
//     fallout curve), and
//   * the DPPM each model's delivered coverage buys — the gap is the
//     quality claim a stuck-at-only sign-off silently over-states for
//     delay defects, and
//   * the deterministic closure: the same transition universe under an
//     atpg source — two-pattern PODEM targets the survivors the LFSR
//     program misses and reaches higher coverage with fewer patterns.
//
// As in examples/bist_quality.cpp, --tiny switches to the 8-bit
// multiplier for CI smoke runs.
#include <cstdlib>
#include <iostream>
#include <string>

#include "circuit/generators.hpp"
#include "fault_model/universe.hpp"
#include "flow/flow.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lsiq;

  const bool tiny = argc > 1 && std::string(argv[1]) == "--tiny";

  // The paper's stand-in LSI product and Section 7 quality parameters.
  const circuit::Circuit chip =
      circuit::make_array_multiplier(tiny ? 8 : 16);

  // One spec; only fault_model.kind differs between the two runs.
  flow::FlowSpec spec;
  spec.source.kind = "lfsr";
  spec.source.pattern_count = tiny ? 512 : 1024;
  spec.source.lfsr_seed = 1981;
  spec.observe.kind = "progressive";
  spec.observe.strobe_step = tiny ? 16 : 24;
  spec.engine.kind = "ppsfp_mt";
  spec.engine.num_threads = 0;
  spec.lot.chip_count = 277;
  spec.lot.yield = 0.07;
  spec.lot.n0 = 8.0;
  spec.lot.seed = 1981;
  spec.analysis.strobe_coverages = {0.05, 0.10, 0.20, 0.30, 0.45, 0.60};
  spec.analysis.method = "least_squares";

  flow::FlowSpec transition_spec = spec;
  transition_spec.fault_model.kind = "transition";

  const flow::FlowResult stuck_at = flow::run(chip, spec);
  const flow::FlowResult transition = flow::run(chip, transition_spec);

  std::cout << "Stuck-at vs transition quality: " << chip.name() << ", "
            << spec.source.pattern_count
            << " LFSR patterns (consecutive launch/capture pairs), "
            << spec.lot.chip_count << "-chip lot\n\n";

  // 1. The same strobe readout against both coverage curves: the
  // transition curve rises later, so each checkpoint costs more patterns.
  util::TextTable strobes({"target f", "s-a patterns", "s-a failed",
                           "trans patterns", "trans failed"});
  for (std::size_t i = 0; i < stuck_at.table.size(); ++i) {
    const wafer::StrobeRow& sa = stuck_at.table[i];
    const wafer::StrobeRow& tr = transition.table[i];
    strobes.add_row({util::format_percent(sa.target_coverage, 0),
                     std::to_string(sa.pattern_index),
                     std::to_string(sa.cumulative_failed),
                     std::to_string(tr.pattern_index),
                     std::to_string(tr.cumulative_failed)});
  }
  std::cout << "Table-1 readout per fault model:\n"
            << strobes.to_string() << "\n";

  // 2. The headline: coverage and DPPM per model for the same silicon.
  util::TextTable quality({"fault model", "universe N", "classes",
                           "final f", "DPPM at final f"});
  for (const flow::FlowResult* run : {&stuck_at, &transition}) {
    const fault::FaultList universe = fault_model::universe(
        chip, *fault_model::fault_model_from_name(run->spec.fault_model.kind));
    quality.add_row(
        {run->spec.fault_model.kind,
         std::to_string(universe.fault_count()),
         std::to_string(universe.class_count()),
         util::format_percent(run->final_coverage(), 2),
         util::format_double(run->analyzer->dppm(run->final_coverage()), 0)});
  }
  std::cout << quality.to_string() << "\n";

  const double gap = transition.analyzer->dppm(transition.final_coverage()) -
                     stuck_at.analyzer->dppm(stuck_at.final_coverage());
  std::cout << "Reading: the transition universe collapses less and is "
               "detected later, so the\nsame program delivers less of it; "
               "quoting only the stuck-at DPPM under-states\nthe shipped "
               "defect level by "
            << util::format_double(gap, 0)
            << " DPPM at these product parameters.\n";

  // 3. Deterministic closure: flip only the source axis to atpg. The
  // random phase mirrors the LFSR regime; the PODEM phase emits a
  // (launch, capture) pair per survivor and proves the rest redundant.
  flow::FlowSpec atpg_spec = transition_spec;
  atpg_spec.source = flow::PatternSourceSpec{};
  atpg_spec.source.kind = "atpg";
  atpg_spec.source.atpg.random_patterns = 256;
  atpg_spec.source.atpg.seed = 1981;
  atpg_spec.source.atpg_compact = true;
  atpg_spec.observe = flow::ObservationSpec{};  // full scan observation
  atpg_spec.lot.chip_count = 0;                 // coverage-only phase
  atpg_spec.analysis.strobe_coverages.clear();
  atpg_spec.analysis.method = "given";
  const flow::FlowResult closed = flow::run(chip, atpg_spec);
  const tpg::AtpgResult& atpg = *closed.atpg;
  std::cout << "\nDeterministic closure (transition ATPG, pair-aware "
               "compaction):\n  "
            << closed.patterns.size() << " patterns instead of "
            << spec.source.pattern_count << " reach "
            << util::format_percent(closed.final_coverage(), 2) << " ("
            << util::format_double(
                   closed.analyzer->dppm(closed.final_coverage()), 0)
            << " DPPM vs "
            << util::format_double(
                   closed.analyzer->dppm(transition.final_coverage()), 0)
            << " for the LFSR program, same ground-truth analyzer); "
            << atpg.redundant_classes
            << " classes proven redundant ("
            << atpg.untestable_launch_classes << " launch, "
            << atpg.untestable_capture_classes << " capture), effective "
            << util::format_percent(atpg.effective_coverage, 2) << ".\n";

  // Hard checks (non-zero exit on failure): the two runs really did share
  // the lot axis, transition coverage never exceeds stuck-at, and the
  // deterministic program dominates the LFSR one on its own universe.
  if (stuck_at.lot->size() != transition.lot->size() ||
      transition.final_coverage() > stuck_at.final_coverage() ||
      closed.final_coverage() < transition.final_coverage() ||
      closed.patterns.size() >= spec.source.pattern_count) {
    std::cerr << "FAIL: side-by-side invariants violated\n";
    return EXIT_FAILURE;
  }
  return EXIT_SUCCESS;
}
