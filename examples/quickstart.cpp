// Quickstart: the model in one page.
//
// You know (or have estimated) two things about a product:
//   * its manufacturing yield y, and
//   * n0, the average number of stuck-at-equivalent faults on a defective
//     chip (characterized from a lot — see process_characterization.cpp).
//
// The QualityAnalyzer then answers the planning questions: what reject
// rate does a given stuck-at coverage buy, and what coverage does a target
// quality level require — compared against the older Wadsack and
// Williams-Brown rules that demand near-perfect coverage.
#include <iostream>

#include "core/quality_analyzer.hpp"
#include "util/table.hpp"

int main() {
  using namespace lsiq;

  // The paper's Section 7 product: an LSI chip with 7% yield whose lot
  // characterization gave n0 = 8.
  const quality::QualityAnalyzer product(/*yield=*/0.07, /*n0=*/8.0);

  std::cout << product.report({0.01, 0.005, 0.001}) << "\n";

  // What does the test program you already have deliver?
  util::TextTable table({"stuck-at coverage", "field reject rate", "DPPM"});
  for (const double f : {0.50, 0.80, 0.90, 0.95, 0.99}) {
    table.add_row({util::format_percent(f, 0),
                   util::format_probability(product.reject_rate(f)),
                   util::format_double(product.dppm(f), 0)});
  }
  std::cout << "Quality delivered by a given coverage:\n"
            << table.to_string();

  std::cout << "\nThe paper's headline: this product needs "
            << util::format_percent(product.required_coverage(0.01), 0)
            << " coverage for 1% rejects where Wadsack's rule demanded "
            << util::format_percent(product.wadsack_coverage(0.01), 0)
            << ".\n";
  return 0;
}
