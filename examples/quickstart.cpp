// Quickstart: the model in one page — and the whole pipeline in one spec.
//
// Part 1, the closed-form model. You know (or have estimated) two things
// about a product:
//   * its manufacturing yield y, and
//   * n0, the average number of stuck-at-equivalent faults on a defective
//     chip (characterized from a lot — see process_characterization.cpp).
//
// The QualityAnalyzer then answers the planning questions: what reject
// rate does a given stuck-at coverage buy, and what coverage does a target
// quality level require — compared against the older Wadsack and
// Williams-Brown rules that demand near-perfect coverage.
//
// Part 2, the unified flow API. When you have a netlist instead of a
// characterized (y, n0), one declarative flow::FlowSpec runs the entire
// Section 5-7 experiment — pattern source, observation, grading engine,
// virtual lot, strobe readout, characterization — and hands back the
// analyzer of part 1.
#include <iostream>

#include "circuit/generators.hpp"
#include "core/quality_analyzer.hpp"
#include "flow/flow.hpp"
#include "util/table.hpp"

int main() {
  using namespace lsiq;

  // The paper's Section 7 product: an LSI chip with 7% yield whose lot
  // characterization gave n0 = 8.
  const quality::QualityAnalyzer product(/*yield=*/0.07, /*n0=*/8.0);

  std::cout << product.report({0.01, 0.005, 0.001}) << "\n";

  // What does the test program you already have deliver?
  util::TextTable table({"stuck-at coverage", "field reject rate", "DPPM"});
  for (const double f : {0.50, 0.80, 0.90, 0.95, 0.99}) {
    table.add_row({util::format_percent(f, 0),
                   util::format_probability(product.reject_rate(f)),
                   util::format_double(product.dppm(f), 0)});
  }
  std::cout << "Quality delivered by a given coverage:\n"
            << table.to_string();

  std::cout << "\nThe paper's headline: this product needs "
            << util::format_percent(product.required_coverage(0.01), 0)
            << " coverage for 1% rejects where Wadsack's rule demanded "
            << util::format_percent(product.wadsack_coverage(0.01), 0)
            << ".\n";

  // ---- part 2: the same analysis from a netlist, one spec ----
  // An 8-bit multiplier stands in for the product; the spec picks an LFSR
  // program, progressive tester strobing, the PPSFP engine, a 277-chip
  // virtual lot, and a least-squares characterization from the fallout.
  const circuit::Circuit chip = circuit::make_array_multiplier(8);
  flow::FlowSpec spec;
  spec.source.pattern_count = 512;       // source.kind defaults to "lfsr"
  spec.source.lfsr_seed = 1981;
  spec.observe.kind = "progressive";
  spec.observe.strobe_step = 16;
  spec.lot.chip_count = 277;
  spec.lot.yield = 0.07;
  spec.lot.n0 = 8.0;                     // the ground truth to recover
  spec.analysis.strobe_coverages = flow::table1_strobes();
  spec.analysis.method = "least_squares";

  const flow::FlowResult run = flow::run(chip, spec);
  std::cout << "\nThe same conclusions, derived end-to-end by flow::run on "
            << chip.name() << ":\n"
            << "  program coverage "
            << util::format_percent(run.final_coverage(), 1)
            << ", lot fallout "
            << util::format_percent(
                   run.test->fraction_failed_within(run.patterns.size()), 1)
            << ", characterized n0 = "
            << util::format_double(run.analyzer->n0(), 2)
            << " (truth: 8)\n"
            << "  -> required coverage for 1% rejects: "
            << util::format_percent(run.analyzer->required_coverage(0.01), 0)
            << "\n";
  return 0;
}
