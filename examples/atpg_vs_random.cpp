// Test-generation economics: random patterns vs deterministic ATPG, and
// what each buys in shipped quality.
//
// Section 1 of the paper: "test development and test application costs
// increase very rapidly" as coverage approaches 100%. This example makes
// that concrete on a real circuit, using two coverage-only flow specs that
// differ ONLY in their pattern-source axis: an explicit random program
// graded on the multi-threaded engine, then an ATPG source whose PODEM
// phase closes the stubborn faults (proving some redundant). The quality
// model then translates every extra point of coverage into a reject rate —
// so the cost of the last few percent can be weighed against the DPPM they
// deliver.
#include <iostream>

#include "circuit/generators.hpp"
#include "fault/fault_list.hpp"
#include "flow/flow.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace lsiq;

  const circuit::Circuit product = circuit::make_alu(8);
  const fault::FaultList faults = fault::FaultList::full_universe(product);
  std::cout << "Circuit: " << product.name() << " — "
            << product.stats().combinational_gates << " gates, N = "
            << faults.fault_count() << " faults ("
            << faults.class_count() << " classes)\n\n";

  // The quality context and the axes shared by both phases: coverage-only
  // (no lot), graded on the multi-threaded compiled engine.
  flow::FlowSpec spec;
  spec.engine.kind = "ppsfp_mt";
  spec.engine.num_threads = 0;  // one worker per hardware thread
  spec.lot.chip_count = 0;      // no lot: source-vs-source comparison
  spec.lot.yield = 0.25;        // the product's characterization context
  spec.lot.n0 = 6.0;

  // ---- random-pattern phase: coverage vs pattern count ----
  util::Rng rng(11);
  sim::PatternSet random_patterns(product.pattern_inputs().size());
  random_patterns.append_random(2048, rng);
  spec.source.kind = "explicit";
  spec.source.patterns = random_patterns;
  const flow::FlowResult random_run = flow::run(faults, spec);
  const quality::QualityAnalyzer& context = *random_run.analyzer;
  const fault::CoverageCurve& curve = *random_run.curve;

  util::TextTable random_table(
      {"random patterns", "coverage", "predicted reject rate", "DPPM"});
  for (const std::size_t t : {16u, 64u, 256u, 1024u, 2048u}) {
    const double f = curve.coverage_after(t);
    random_table.add_row({std::to_string(t), util::format_percent(f, 2),
                          util::format_probability(context.reject_rate(f)),
                          util::format_double(context.dppm(f), 0)});
  }
  std::cout << "Random patterns alone (the flattening curve):\n"
            << random_table.to_string();

  // ---- deterministic phase: the same flow with an ATPG source ----
  spec.source = flow::PatternSourceSpec{};
  spec.source.kind = "atpg";
  spec.source.atpg.random_patterns = 256;
  spec.source.atpg.seed = 11;
  spec.source.atpg_compact = true;  // reverse-order static compaction
  const flow::FlowResult atpg_run = flow::run(faults, spec);
  const tpg::AtpgResult& atpg = *atpg_run.atpg;

  std::cout << "\nTwo-phase ATPG (random + PODEM with fault dropping):\n";
  util::TextTable atpg_table({"quantity", "value"});
  atpg_table.add_row({"patterns generated",
                      std::to_string(atpg.patterns.size())});
  atpg_table.add_row({"after reverse-order compaction",
                      std::to_string(atpg_run.patterns.size())});
  atpg_table.add_row({"coverage f = m/N",
                      util::format_percent(atpg.coverage, 2)});
  atpg_table.add_row({"proven-redundant classes",
                      std::to_string(atpg.redundant_classes)});
  atpg_table.add_row({"effective coverage (redundancies excluded)",
                      util::format_percent(atpg.effective_coverage, 2)});
  atpg_table.add_row({"aborted", std::to_string(atpg.aborted_classes)});
  std::cout << atpg_table.to_string();

  // ---- the economics ----
  const double f_random = curve.final_coverage();
  const double f_atpg = atpg.coverage;
  std::cout << "\nWhat the deterministic phase buys:\n"
            << "  2048 random patterns: "
            << util::format_percent(f_random, 2) << " coverage -> "
            << util::format_double(context.dppm(f_random), 0) << " DPPM\n"
            << "  ATPG-closed program:  "
            << util::format_percent(f_atpg, 2) << " coverage -> "
            << util::format_double(context.dppm(f_atpg), 0) << " DPPM\n"
            << "  (and " << atpg_run.patterns.size()
            << " patterns instead of 2048 on the tester)\n"
            << "\nSection 1's redundancy point, demonstrated: "
            << atpg.redundant_classes
            << " fault classes are provably untestable, so 100% raw\n"
               "coverage is unreachable — the effective figure is the one "
               "that matters.\n";
  return 0;
}
