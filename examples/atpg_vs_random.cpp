// Test-generation economics: random patterns vs deterministic ATPG, and
// what each buys in shipped quality.
//
// Section 1 of the paper: "test development and test application costs
// increase very rapidly" as coverage approaches 100%. This example makes
// that concrete on a real circuit: the random-pattern coverage curve
// flattens, PODEM closes the stubborn faults (proving some redundant), and
// the quality model translates every extra point of coverage into a reject
// rate — so the cost of the last few percent can be weighed against the
// DPPM they deliver.
#include <iostream>

#include "circuit/generators.hpp"
#include "core/quality_analyzer.hpp"
#include "fault/fault_list.hpp"
#include "fault/fault_sim.hpp"
#include "tpg/atpg.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace lsiq;

  const circuit::Circuit product = circuit::make_alu(8);
  const fault::FaultList faults = fault::FaultList::full_universe(product);
  std::cout << "Circuit: " << product.name() << " — "
            << product.stats().combinational_gates << " gates, N = "
            << faults.fault_count() << " faults ("
            << faults.class_count() << " classes)\n\n";

  // The product's quality context (from characterization).
  const quality::QualityAnalyzer context(/*yield=*/0.25, /*n0=*/6.0);

  // ---- random-pattern phase: coverage vs pattern count ----
  util::Rng rng(11);
  sim::PatternSet random_patterns(product.pattern_inputs().size());
  random_patterns.append_random(2048, rng);
  // Grade the 2048-pattern program on the multi-threaded compiled engine
  // (0 = one worker per hardware thread); results are bit-identical to the
  // serial grader.
  const fault::FaultSimResult graded =
      simulate_ppsfp_mt(faults, random_patterns, nullptr, 0);
  const fault::CoverageCurve curve =
      graded.curve(faults, random_patterns.size());

  util::TextTable random_table(
      {"random patterns", "coverage", "predicted reject rate", "DPPM"});
  for (const std::size_t t : {16u, 64u, 256u, 1024u, 2048u}) {
    const double f = curve.coverage_after(t);
    random_table.add_row({std::to_string(t), util::format_percent(f, 2),
                          util::format_probability(context.reject_rate(f)),
                          util::format_double(context.dppm(f), 0)});
  }
  std::cout << "Random patterns alone (the flattening curve):\n"
            << random_table.to_string();

  // ---- deterministic phase: PODEM closes the set ----
  tpg::AtpgOptions options;
  options.random_patterns = 256;
  options.seed = 11;
  const tpg::AtpgResult atpg = generate_tests(faults, options);
  const sim::PatternSet compacted =
      tpg::reverse_order_compact(faults, atpg.patterns);

  std::cout << "\nTwo-phase ATPG (random + PODEM with fault dropping):\n";
  util::TextTable atpg_table({"quantity", "value"});
  atpg_table.add_row({"patterns generated", std::to_string(atpg.patterns.size())});
  atpg_table.add_row({"after reverse-order compaction",
                      std::to_string(compacted.size())});
  atpg_table.add_row({"coverage f = m/N",
                      util::format_percent(atpg.coverage, 2)});
  atpg_table.add_row({"proven-redundant classes",
                      std::to_string(atpg.redundant_classes)});
  atpg_table.add_row({"effective coverage (redundancies excluded)",
                      util::format_percent(atpg.effective_coverage, 2)});
  atpg_table.add_row({"aborted", std::to_string(atpg.aborted_classes)});
  std::cout << atpg_table.to_string();

  // ---- the economics ----
  const double f_random = curve.final_coverage();
  const double f_atpg = atpg.coverage;
  std::cout << "\nWhat the deterministic phase buys:\n"
            << "  2048 random patterns: "
            << util::format_percent(f_random, 2) << " coverage -> "
            << util::format_double(context.dppm(f_random), 0) << " DPPM\n"
            << "  ATPG-closed program:  "
            << util::format_percent(f_atpg, 2) << " coverage -> "
            << util::format_double(context.dppm(f_atpg), 0) << " DPPM\n"
            << "  (and " << compacted.size() << " patterns instead of 2048"
            << " on the tester)\n"
            << "\nSection 1's redundancy point, demonstrated: "
            << atpg.redundant_classes
            << " fault classes are provably untestable, so 100% raw\n"
               "coverage is unreachable — the effective figure is the one "
               "that matters.\n";
  return 0;
}
