// BIST vs full-observation product quality.
//
// The paper's DPPM-vs-coverage model assumes the tester compares every
// output on every pattern. A logic-BIST tester does not: an on-chip LFSR
// drives the patterns and a MISR compacts all responses into one k-bit
// signature, so the coverage that reaches the quality model is only what
// survives signature aliasing. This example runs the paper's stand-in
// product (the 16-bit array multiplier; --tiny switches to the 8-bit one
// for CI smoke runs) through flow specs that differ only in their
// observation axis, and reports, per MISR width:
//
//   * full-observation coverage of the LFSR program (what LAMP would say),
//   * exact signature coverage (simulated aliasing, not a model),
//   * the analytic 2^-k expectation it should straddle, and
//   * the DPPM each coverage buys at the Section 7 product parameters —
//     the quality cost of compaction.
//
// It also verifies, as hard checks (non-zero exit on failure), the two
// properties the test plan pins: signature grading is bit-deterministic
// across 1/2/8 worker threads, and the measured aliasing loss stays
// within the analytic bound for the wide production register.
#include <cstdlib>
#include <iostream>
#include <string>

#include "bist/misr.hpp"
#include "circuit/generators.hpp"
#include "fault/fault_list.hpp"
#include "flow/flow.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace lsiq;

  // --tiny: the CI smoke configuration (same code path, smaller product).
  const bool tiny = argc > 1 && std::string(argv[1]) == "--tiny";

  // The paper's stand-in LSI product and Section 7 quality parameters.
  const circuit::Circuit chip =
      circuit::make_array_multiplier(tiny ? 8 : 16);
  const fault::FaultList faults = fault::FaultList::full_universe(chip);
  const quality::QualityAnalyzer product(/*yield=*/0.07, /*n0=*/8.0);

  std::cout << "BIST quality analysis: " << chip.name() << ", "
            << faults.fault_count() << "-fault universe, "
            << faults.class_count() << " collapsed classes\n\n";

  // Everything but the observation axis is shared: LFSR program,
  // signature grading on every hardware thread, no lot (coverage-only),
  // Section 7 analyzer parameters.
  flow::FlowSpec spec;
  spec.source.kind = "lfsr";
  spec.source.pattern_count = tiny ? 256 : 1024;
  spec.source.lfsr_seed = 1981;
  spec.observe.kind = "misr";
  spec.engine.kind = "ppsfp_mt";
  spec.engine.num_threads = 0;  // grade with every hardware thread
  spec.lot.chip_count = 0;
  spec.lot.yield = 0.07;
  spec.lot.n0 = 8.0;

  // 1. Determinism: the same session must grade bit-identically with 1,
  // 2 and 8 workers (each fault class is owned by exactly one lane).
  spec.observe.misr_width = 32;
  spec.engine.kind = "ppsfp";  // exactly one grading worker
  const flow::FlowResult single = flow::run(faults, spec);
  const bist::BistResult& reference = *single.bist;
  spec.engine.kind = "ppsfp_mt";
  bool deterministic = true;
  for (const std::size_t threads : {2u, 8u}) {
    spec.engine.num_threads = threads;
    const flow::FlowResult repeat_run = flow::run(faults, spec);
    const bist::BistResult& repeat = *repeat_run.bist;
    deterministic = deterministic &&
                    repeat.good_signature == reference.good_signature &&
                    repeat.fault_signatures == reference.fault_signatures &&
                    repeat.first_error_pattern ==
                        reference.first_error_pattern &&
                    repeat.first_divergence_pattern ==
                        reference.first_divergence_pattern;
  }
  spec.engine.num_threads = 0;
  std::cout << "signature grading across 1/2/8 threads: "
            << (deterministic ? "bit-identical" : "MISMATCH") << "\n";

  // 2. Aliasing loss vs the analytic model, across register widths — the
  // observation axis swept, everything else pinned.
  util::TextTable table({"MISR width", "full-obs coverage", "sig coverage",
                         "aliased classes", "measured alias frac",
                         "2^-k model", "DPPM full-obs", "DPPM BIST"});
  const double dppm_full = product.dppm(reference.raw_coverage);
  bist::BistResult narrow = reference;
  for (const int width : {32, 16, 8, 4}) {
    spec.observe.misr_width = width;
    const flow::FlowResult sweep = flow::run(faults, spec);
    const bist::BistResult& r = *sweep.bist;
    if (width == 8) narrow = r;
    table.add_row(
        {util::format_double(width, 0),
         util::format_percent(r.raw_coverage, 2),
         util::format_percent(r.signature_coverage, 2),
         util::format_double(static_cast<double>(r.aliased_classes.size()),
                             0),
         util::format_probability(r.measured_aliasing_fraction()),
         util::format_probability(bist::misr_aliasing_probability(width)),
         util::format_double(product.dppm(r.raw_coverage), 0),
         util::format_double(product.dppm(r.signature_coverage), 0)});
  }
  std::cout << "\n" << table.to_string();

  // 3. The acceptance check: with the production-width register the
  // simulated signature coverage must sit within the analytic 2^-k
  // aliasing bound of full-observation coverage. The expected aliased
  // mass is raw_detected * 2^-k (~1e-6 classes at k = 32); we allow
  // 1e5x the expectation (~2e-5) before declaring failure — below the
  // coverage a single wrongly-aliased weight-1 class would cost in this
  // universe, so even one such class fails the check.
  const double expected_loss =
      reference.raw_coverage * bist::misr_aliasing_probability(32);
  const double measured_loss = reference.aliasing_loss();
  const bool within_bound = measured_loss <= expected_loss * 1e5;
  std::cout << "\nk=32 session: full-obs coverage "
            << util::format_percent(reference.raw_coverage, 3)
            << ", signature coverage "
            << util::format_percent(reference.signature_coverage, 3)
            << "\n  measured aliasing loss " << measured_loss
            << " vs analytic expectation " << expected_loss << ": "
            << (within_bound ? "within bound" : "OUT OF BOUND") << "\n";

  // 4. What compaction costs in shipped quality at the narrow widths:
  // the DPPM gap between testing with full observation and shipping on a
  // k-bit signature.
  std::cout << "\nAt k=8 the signature forfeits "
            << util::format_percent(narrow.aliasing_loss(), 3)
            << " coverage; the product's reject rate moves from "
            << util::format_double(dppm_full, 0) << " to "
            << util::format_double(product.dppm(narrow.signature_coverage),
                                   0)
            << " DPPM.\n";

  return (deterministic && within_bound) ? EXIT_SUCCESS : EXIT_FAILURE;
}
