// The Section 8 scenario: what does a fine-line shrink do to the testing
// problem?
//
// Shrinking a circuit's feature size shrinks its area: yield rises (Eq. 3),
// which by itself *lowers* the required fault coverage. But finer geometry
// means one physical defect hits more logic, so n0 — faults per defective
// chip — rises too, which lowers the requirement further. This example
// walks a product through three process nodes and quantifies both effects,
// using the yield-model library for the area/yield link and the core model
// for the coverage requirement. (Pure closed-form — the simulation-backed
// counterpart of a what-if like this is a flow::FlowSpec sweep; see
// tools/lsiq_flow for running such scenarios from spec files.)
#include <iostream>

#include "core/coverage_requirement.hpp"
#include "util/table.hpp"
#include "yield/defect_density.hpp"
#include "yield/models.hpp"

int main() {
  using namespace lsiq;

  std::cout << "Fine-line scaling and the fault-coverage requirement "
               "(Section 8)\n\n";

  // The product starts at a 4 cm^2-class die on a process with
  // D0 = 0.8 defects/cm^2 and clustering X = 0.5.
  const yield_model::DefectModel node0(
      yield_model::Process{/*defect_density=*/0.8, /*variance_ratio=*/0.5},
      /*area=*/4.0);

  struct Node {
    const char* name;
    double linear_shrink;  ///< relative to node 0
    double n0;             ///< faults per defective chip (rises as features
                           ///< shrink: one defect spans more logic)
  };
  const Node nodes[] = {
      {"node A (1.00x)", 1.00, 6.0},
      {"node B (0.70x)", 0.70, 9.0},
      {"node C (0.50x)", 0.50, 14.0},
  };

  const double target_reject = 0.001;  // 1000 DPPM class product

  util::TextTable table({"process node", "area", "defects/chip", "yield",
                         "n0", "required f (n0 fixed at 6)",
                         "required f (n0 scaled)"});
  for (const Node& node : nodes) {
    const yield_model::DefectModel scaled =
        node0.shrunk(node.linear_shrink);
    const double y = scaled.yield();
    // Effect 1: yield alone (n0 held at the node-A value).
    const double f_yield_only =
        quality::required_fault_coverage(target_reject, y, nodes[0].n0);
    // Effect 2: yield + the n0 growth of finer geometry.
    const double f_both =
        quality::required_fault_coverage(target_reject, y, node.n0);
    table.add_row({node.name, util::format_double(scaled.area(), 2),
                   util::format_double(scaled.defects_per_chip(), 2),
                   util::format_percent(y, 1),
                   util::format_double(node.n0, 0),
                   util::format_percent(f_yield_only, 1),
                   util::format_percent(f_both, 1)});
  }
  std::cout << table.to_string();

  std::cout
      << "\nReading (paper, Section 8): \"a higher yield indicates a lower\n"
         "fault-coverage requirement if n0 remains fixed ... one expects\n"
         "many logical faults to be produced by a physical defect. This\n"
         "phenomenon could result in a higher value of n0, thereby further\n"
         "reducing the fault-coverage requirement.\" Both columns confirm\n"
         "the direction; the combined effect is substantial.\n";

  // Side note: the same defect data under the catalogue of classical yield
  // models (references [7]-[12]) — how model choice moves the yield input.
  std::cout << "\nYield-model sensitivity at node A (lambda = "
            << util::format_double(node0.defects_per_chip(), 2) << "):\n";
  util::TextTable models({"model", "yield", "required f @ n0=6"});
  const double lambda = node0.defects_per_chip();
  struct Entry {
    const char* name;
    double yield;
  };
  for (const Entry& e :
       {Entry{"Poisson", yield_model::poisson_yield(lambda)},
        Entry{"Murphy [7]", yield_model::murphy_yield(lambda)},
        Entry{"Seeds [8]", yield_model::seeds_yield(lambda)},
        Entry{"Price [9]", yield_model::price_yield(lambda)},
        Entry{"neg. binomial (Eq. 3)", node0.yield()}}) {
    models.add_row(
        {e.name, util::format_percent(e.yield, 2),
         util::format_percent(
             quality::required_fault_coverage(target_reject, e.yield, 6.0),
             1)});
  }
  std::cout << models.to_string();
  return 0;
}
