// Closing the loop: from "this chip failed" to "this is the fault".
//
// The paper's procedure uses only each chip's first failing pattern; the
// tester can log the full pass/fail vector at no extra cost, and a
// precomputed fault dictionary turns that vector into a ranked list of
// candidate fault sites. This example builds the dictionary for a circuit,
// pulls failing chips from a virtual lot, diagnoses them, and reports how
// often the true resident fault is identified — plus the dictionary's
// intrinsic resolution limit (signature-equivalent fault classes).
#include <iostream>

#include "circuit/generators.hpp"
#include "fault/dictionary.hpp"
#include "fault/fault_sim.hpp"
#include "flow/flow.hpp"
#include "util/table.hpp"
#include "wafer/chip_model.hpp"
#include "wafer/tester.hpp"

int main() {
  using namespace lsiq;

  const circuit::Circuit product = circuit::make_comparator(6);
  const fault::FaultList faults = fault::FaultList::full_universe(product);
  // The production program comes from the flow pattern-source axis; the
  // dictionary itself is diagnosis machinery the flow does not own.
  flow::PatternSourceSpec source;  // kind = "lfsr"
  source.pattern_count = 256;
  source.lfsr_seed = 4242;
  const sim::PatternSet program = flow::make_patterns(faults, source);

  std::cout << "Circuit: " << product.name() << " — "
            << product.stats().combinational_gates << " gates, "
            << faults.class_count() << " fault classes\n"
            << "Program: " << program.size() << " patterns\n\n";

  // Build the dictionary (a no-drop fault simulation of the program).
  const fault::FaultDictionary dictionary =
      fault::FaultDictionary::build(faults, program);
  std::cout << "Dictionary: " << dictionary.class_count()
            << " signatures, " << dictionary.distinct_signature_count()
            << " distinct (classes sharing a signature cannot be separated "
               "by this program)\n\n";

  // Manufacture defective chips with exactly one fault each (the
  // diagnosable case) and run them through the tester protocol, logging
  // the full pass/fail vector instead of stopping at first fail.
  util::Rng rng(7);
  std::size_t diagnosed_exact = 0;
  std::size_t diagnosed_top3 = 0;
  std::size_t undetected = 0;
  const std::size_t trials = 200;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const std::size_t true_class = rng.uniform_below(faults.class_count());
    std::vector<bool> observed(program.size(), false);
    bool any = false;
    for (std::size_t t = 0; t < program.size(); ++t) {
      if (dictionary.detects(true_class, t)) {
        observed[t] = true;
        any = true;
      }
    }
    if (!any) {
      ++undetected;  // fault invisible to this program: no diagnosis
      continue;
    }
    const auto candidates = dictionary.diagnose(observed, 3);
    if (!candidates.empty() &&
        dictionary.signature(candidates.front().class_index) ==
            dictionary.signature(true_class)) {
      ++diagnosed_exact;
    }
    for (const auto& cand : candidates) {
      if (dictionary.signature(cand.class_index) ==
          dictionary.signature(true_class)) {
        ++diagnosed_top3;
        break;
      }
    }
  }

  util::TextTable table({"outcome", "count", "rate"});
  const std::size_t diagnosable = trials - undetected;
  table.add_row({"single-fault chips sampled", std::to_string(trials), ""});
  table.add_row({"fault invisible to program", std::to_string(undetected),
                 util::format_percent(
                     static_cast<double>(undetected) / trials, 1)});
  table.add_row(
      {"diagnosed exactly (rank 1)", std::to_string(diagnosed_exact),
       util::format_percent(
           static_cast<double>(diagnosed_exact) / diagnosable, 1)});
  table.add_row(
      {"true class in top 3", std::to_string(diagnosed_top3),
       util::format_percent(
           static_cast<double>(diagnosed_top3) / diagnosable, 1)});
  std::cout << table.to_string();

  std::cout << "\nA diagnosis demo on one chip:\n";
  // One concrete failing chip with a known fault.
  const std::size_t demo_class = 17 % faults.class_count();
  std::vector<bool> observed(program.size(), false);
  for (std::size_t t = 0; t < program.size(); ++t) {
    observed[t] = dictionary.detects(demo_class, t);
  }
  const auto candidates = dictionary.diagnose(observed, 3);
  std::cout << "  injected: "
            << fault_name(product, faults.representatives()[demo_class])
            << "\n";
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    std::cout << "  rank " << (i + 1) << ": "
              << fault_name(product,
                            faults.representatives()[candidates[i]
                                                         .class_index])
              << "  (score "
              << util::format_double(candidates[i].score, 3) << ")\n";
  }
  return 0;
}
