// The full Section 5-7 flow on a virtual process line, end to end —
// expressed as ONE declarative flow::FlowSpec instead of hand-wired steps:
//
//   1. take a product netlist (here: a 12-bit array multiplier built by the
//      generator library — swap in any .bench file via read_bench_file);
//   2. enumerate and collapse its stuck-at fault universe;
//   3. the spec's source axis builds the ordered production test program
//      (LFSR patterns) and the engine axis grades it with the PPSFP fault
//      simulator — the paper's LAMP step;
//   4. the lot axis runs a production lot through the virtual tester
//      recording each chip's first failing pattern — the Sentry step;
//   5. the analysis axis reads out the strobe table and characterizes the
//      product by least squares;
//   6. decide: is the current program good enough for the quality target,
//      and if not, what coverage must test development reach?
#include <iostream>

#include "circuit/generators.hpp"
#include "fault/fault_list.hpp"
#include "flow/flow.hpp"
#include "util/table.hpp"

int main() {
  using namespace lsiq;

  // ---- 1-2: product and fault universe ----
  const circuit::Circuit product = circuit::make_array_multiplier(12);
  const fault::FaultList faults = fault::FaultList::full_universe(product);
  const circuit::CircuitStats stats = product.stats();
  std::cout << "Product: " << product.name() << " — "
            << stats.combinational_gates << " gates, "
            << stats.primary_inputs << " inputs, depth " << stats.depth
            << "\nFault universe: N = " << faults.fault_count() << " ("
            << faults.class_count() << " collapsed classes)\n";

  // ---- 3-5: the whole experiment as one spec ----
  flow::FlowSpec spec;
  spec.source.kind = "lfsr";  // the production test program
  spec.source.pattern_count = 768;
  spec.source.lfsr_seed = 2024;
  // Functional-program emulation: output pins come under tester strobe
  // progressively, so the fallout curve rises gradually and the strobe
  // table spans the coverage axis (see fault/strobe.hpp).
  spec.observe.kind = "progressive";
  spec.observe.strobe_step = 16;
  spec.engine.kind = "ppsfp";
  spec.lot.chip_count = 500;
  spec.lot.yield = 0.12;  // what the fab's yield tracking reports
  spec.lot.n0 = 7.0;      // ground truth the estimators must recover
  spec.lot.seed = 99;
  spec.analysis.strobe_coverages = flow::table1_strobes();
  spec.analysis.method = "least_squares";

  const flow::FlowResult lot_run = flow::run(faults, spec);
  std::cout << "Test program: " << lot_run.patterns.size()
            << " patterns in tester order\n";

  util::TextTable fallout({"coverage", "patterns", "fraction failed"});
  for (const wafer::StrobeRow& row : lot_run.table) {
    fallout.add_row({util::format_percent(row.actual_coverage, 1),
                     std::to_string(row.pattern_index),
                     util::format_double(row.cumulative_fraction, 3)});
  }
  std::cout << "\nLot fallout vs cumulative coverage (500 chips):\n"
            << fallout.to_string();

  const quality::QualityAnalyzer& characterized = *lot_run.analyzer;
  std::cout << "\n" << characterized.report({0.01, 0.001}) << "\n";
  std::cout << "(virtual-lot ground truth: n0 = "
            << util::format_double(lot_run.lot->realized_n0(), 2) << ")\n";

  // ---- 6: decide ----
  const double coverage_now = lot_run.final_coverage();
  const double target_reject = 0.005;
  const double needed =
      characterized.required_coverage(target_reject);
  std::cout << "\nCurrent program coverage: "
            << util::format_percent(coverage_now, 1)
            << "  ->  predicted reject rate "
            << util::format_probability(
                   characterized.reject_rate(coverage_now))
            << "\nTarget reject rate " << target_reject << "  ->  needs "
            << util::format_percent(needed, 1) << " coverage: "
            << (coverage_now >= needed
                    ? "current program is sufficient."
                    : "test development must close the gap.")
            << "\n";
  return 0;
}
