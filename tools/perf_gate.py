#!/usr/bin/env python3
"""Perf gate over google-benchmark JSON: fail on benchmark slowdowns.

    perf_gate.py BASELINE.json CURRENT.json [--filter SUBSTRING]
                 [--threshold FRACTION] [--per SUBSTRING=FRACTION]...
                 [--history FILE [--label LABEL]]

Compares real_time for every benchmark whose name contains the filter
substring (default: every benchmark in the file) and exits non-zero when
any of them is slower than baseline * (1 + threshold) (default 0.25, the
ROADMAP's >25% gate). Each side's time is the benchmark's MEDIAN
aggregate when the run has one (repetitions), falling back to the mean
aggregate, then to the raw iteration entry.

Trend history: --history FILE appends ONE JSON line per invocation with
the current run's medians — {"label":...,"benchmarks":{name:
{"real_time":...,"time_unit":...}}} — so CI can chain the file across
runs into a queryable perf trajectory. The line is appended even when
the gate fails (a regression is exactly the point worth plotting), and
--label tags it (a commit SHA, a date; default empty). To seed or extend
history on a run with no baseline artifact, self-compare:
`perf_gate.py CUR.json CUR.json --history trend.jsonl` — the gate
trivially passes and the medians are still recorded.

Per-benchmark budgets: noisy or highly-threaded benchmarks can carry a
wider budget than the default without loosening the gate for everything
else —

    perf_gate.py base.json cur.json --per PpsfpMt=0.50 --per Podem=0.40

Each --per entry is SUBSTRING=FRACTION; a benchmark uses the budget of
the LONGEST matching substring (most specific wins), falling back to
--threshold when none match.

Benchmarks present on only one side are reported but never fatal, so
adding or renaming benchmarks cannot wedge CI; only a measured regression
on a comparable name can. Time units are taken from the baseline entry
and must match the current one.
"""

import argparse
import json
import sys


def load_times(path, name_filter):
    """Map benchmark name -> (real_time, time_unit) for matching entries.

    Precedence per name: median aggregate > mean aggregate > raw entry,
    so repeated runs gate (and record history) on the noise-robust
    median while plain runs still work.
    """
    with open(path) as handle:
        data = json.load(handle)
    ranks = {"median": 3, "mean": 2}
    best = {}  # name -> (rank, real_time, time_unit)
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            rank = ranks.get(bench.get("aggregate_name"))
            if rank is None:
                continue  # stddev/cv and friends are not times
        else:
            rank = 1
        name = bench.get("run_name", bench.get("name", ""))
        if name_filter not in name:
            continue
        if name not in best or rank > best[name][0]:
            best[name] = (rank, float(bench["real_time"]),
                          bench.get("time_unit", ""))
    return {name: (time, unit) for name, (_, time, unit) in best.items()}


def append_history(path, label, times):
    """Append one trend line (the run's medians) to the JSONL history."""
    entry = {
        "label": label,
        "benchmarks": {
            name: {"real_time": time, "time_unit": unit}
            for name, (time, unit) in sorted(times.items())
        },
    }
    with open(path, "a") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")


def parse_per_budgets(entries):
    """Parse --per SUBSTRING=FRACTION entries into a dict."""
    budgets = {}
    for entry in entries:
        substring, sep, fraction = entry.partition("=")
        if not sep or not substring:
            raise SystemExit(
                f"perf gate: bad --per entry '{entry}' "
                "(expected SUBSTRING=FRACTION)")
        try:
            budgets[substring] = float(fraction)
        except ValueError:
            raise SystemExit(
                f"perf gate: bad --per fraction in '{entry}'")
    return budgets


def budget_for(name, default, budgets):
    """The allowed slowdown for `name`: longest matching --per substring
    wins; the global default otherwise."""
    best = None
    for substring, fraction in budgets.items():
        if substring in name and (best is None or len(substring) > len(best)):
            best = substring
    return budgets[best] if best is not None else default


def main():
    parser = argparse.ArgumentParser(
        description="fail on google-benchmark real_time regressions")
    parser.add_argument("baseline", help="previous BENCH_*.json artifact")
    parser.add_argument("current", help="this run's BENCH_*.json")
    parser.add_argument("--filter", default="",
                        help="substring a benchmark name must contain "
                             "(default: gate every benchmark)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed slowdown fraction (default: "
                             "%(default)s)")
    parser.add_argument("--per", action="append", default=[],
                        metavar="SUBSTRING=FRACTION",
                        help="per-benchmark budget override; repeatable, "
                             "longest matching substring wins")
    parser.add_argument("--history", metavar="FILE", default="",
                        help="append this run's medians to a JSONL trend "
                             "file (written even when the gate fails)")
    parser.add_argument("--label", default="",
                        help="tag recorded in the --history line "
                             "(e.g. a commit SHA)")
    args = parser.parse_args()
    budgets = parse_per_budgets(args.per)

    baseline = load_times(args.baseline, args.filter)
    current = load_times(args.current, args.filter)
    if args.history and current:
        append_history(args.history, args.label, current)
        print(f"perf gate: appended {len(current)} median(s) to "
              f"{args.history}")
    if not baseline:
        print(f"perf gate: baseline has no '{args.filter}' benchmarks; "
              "nothing to compare")
        return 0
    if not current:
        print(f"perf gate: ERROR: current run has no '{args.filter}' "
              "benchmarks (did the suite rename them?)")
        return 1

    failures = []
    for name, (base_time, base_unit) in sorted(baseline.items()):
        if name not in current:
            print(f"perf gate: note: '{name}' absent from current run")
            continue
        cur_time, cur_unit = current[name]
        if base_unit != cur_unit:
            print(f"perf gate: ERROR: '{name}' time unit changed "
                  f"({base_unit} -> {cur_unit})")
            failures.append(name)
            continue
        threshold = budget_for(name, args.threshold, budgets)
        ratio = cur_time / base_time if base_time > 0 else float("inf")
        verdict = "OK"
        if ratio > 1.0 + threshold:
            verdict = f"REGRESSION (> {threshold:.0%} slower)"
            failures.append(name)
        print(f"perf gate: {name}: {base_time:.3f} -> {cur_time:.3f} "
              f"{cur_unit} ({ratio:.2f}x baseline, budget "
              f"{threshold:.0%}) {verdict}")
    for name in sorted(set(current) - set(baseline)):
        print(f"perf gate: note: '{name}' is new (no baseline)")

    if failures:
        print(f"perf gate: FAILED: {len(failures)} benchmark(s) regressed "
              "beyond budget")
        return 1
    print("perf gate: passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
