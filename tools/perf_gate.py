#!/usr/bin/env python3
"""Perf gate over google-benchmark JSON: fail on benchmark slowdowns.

    perf_gate.py BASELINE.json CURRENT.json [--filter SUBSTRING]
                 [--threshold FRACTION]

Compares real_time for every benchmark whose name contains the filter
substring (default "GradeFullProgram" — the end-to-end grading figure the
CI perf job tracks) and exits non-zero when any of them is slower than
baseline * (1 + threshold) (default 0.25, the ROADMAP's >25% gate).
Benchmarks present on only one side are reported but never fatal, so
adding or renaming benchmarks cannot wedge CI; only a measured regression
on a comparable name can. Time units are taken from the baseline entry
and must match the current one.
"""

import argparse
import json
import sys


def load_times(path, name_filter):
    """Map benchmark name -> (real_time, time_unit) for matching entries."""
    with open(path) as handle:
        data = json.load(handle)
    times = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate" and bench.get(
                "aggregate_name") != "mean":
            continue
        name = bench.get("run_name", bench.get("name", ""))
        if name_filter not in name:
            continue
        times[name] = (float(bench["real_time"]), bench.get("time_unit", ""))
    return times


def main():
    parser = argparse.ArgumentParser(
        description="fail on google-benchmark real_time regressions")
    parser.add_argument("baseline", help="previous BENCH_*.json artifact")
    parser.add_argument("current", help="this run's BENCH_*.json")
    parser.add_argument("--filter", default="GradeFullProgram",
                        help="substring a benchmark name must contain "
                             "(default: %(default)s)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed slowdown fraction (default: "
                             "%(default)s)")
    args = parser.parse_args()

    baseline = load_times(args.baseline, args.filter)
    current = load_times(args.current, args.filter)
    if not baseline:
        print(f"perf gate: baseline has no '{args.filter}' benchmarks; "
              "nothing to compare")
        return 0
    if not current:
        print(f"perf gate: ERROR: current run has no '{args.filter}' "
              "benchmarks (did the suite rename them?)")
        return 1

    failures = []
    for name, (base_time, base_unit) in sorted(baseline.items()):
        if name not in current:
            print(f"perf gate: note: '{name}' absent from current run")
            continue
        cur_time, cur_unit = current[name]
        if base_unit != cur_unit:
            print(f"perf gate: ERROR: '{name}' time unit changed "
                  f"({base_unit} -> {cur_unit})")
            failures.append(name)
            continue
        ratio = cur_time / base_time if base_time > 0 else float("inf")
        verdict = "OK"
        if ratio > 1.0 + args.threshold:
            verdict = f"REGRESSION (> {args.threshold:.0%} slower)"
            failures.append(name)
        print(f"perf gate: {name}: {base_time:.3f} -> {cur_time:.3f} "
              f"{cur_unit} ({ratio:.2f}x baseline) {verdict}")
    for name in sorted(set(current) - set(baseline)):
        print(f"perf gate: note: '{name}' is new (no baseline)")

    if failures:
        print(f"perf gate: FAILED: {len(failures)} benchmark(s) regressed "
              f"beyond the {args.threshold:.0%} budget")
        return 1
    print("perf gate: passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
