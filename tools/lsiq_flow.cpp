// lsiq_flow — run one declarative flow spec (or a whole batch of them)
// and print the Table-1 / DPPM report.
//
//     lsiq_flow <spec-file>              run the experiment
//     lsiq_flow --validate <spec-file>   check the spec, run nothing
//     lsiq_flow --check <spec-file>      spec + netlist lint, run nothing
//     lsiq_flow --batch <manifest>       run many specs (see --help)
//
// A spec file selects a circuit and the four flow axes (see
// flow/spec_io.hpp for the format, tools/specs/ for examples). A manifest
// is a directory of .spec files or a list file naming them one per line.
//
// Exit-code contract (stable; scripts may rely on it):
//   0  success — the flow ran (every batch spec "ok" in --batch mode)
//   1  runtime failure — unreadable files, unreachable strobes, failed
//      batch specs, or a write failure on the report/JSONL output
//   2  spec/usage error — bad command line, malformed or invalid spec,
//      empty manifest
#include <cstdlib>
#include <exception>
#include <iostream>
#include <optional>
#include <string>

#include "analyze/rule.hpp"
#include "fault/fault_list.hpp"
#include "fault_model/universe.hpp"
#include "flow/batch.hpp"
#include "flow/flow.hpp"
#include "flow/spec_io.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace {

constexpr const char* kHelp = R"help(usage: lsiq_flow [options] <spec-file>
       lsiq_flow --batch [options] <manifest>

Run one declarative flow spec end to end — materialize the pattern
source, grade it, manufacture and test the virtual lot, characterize
DPPM — and print the Table-1 report. See tools/specs/ for examples.

Options:
  -h, --help            print this help and exit 0
  --validate            check the spec (including the circuit name), run
                        nothing
  --check               dry-run lint: validate the spec, resolve the
                        circuit, and run the static-analysis gate
                        (src/analyze) under the spec's analyze_* policies
                        without grading anything. Diagnostics stream to
                        stdout as JSON lines, a summary to stderr. Exit 0
                        when the gate passes (warnings allowed), 1 when an
                        error-policy rule fired, 2 for an unreadable or
                        invalid spec. Combine with --batch to lint a whole
                        manifest (one JSONL record per spec, lint failures
                        recorded with error_code "lint").

Batch mode (--batch <manifest>):
  A manifest is a directory (every *.spec in it, sorted) or a list file
  (one spec path per line, '#' comments, relative paths resolved against
  the list file's directory). Specs run concurrently; one JSONL record
  per spec is streamed to stdout in completion order.

  --jobs N              concurrent spec runners (0 = hardware threads)
  --checkpoint FILE     JSONL result store doubling as a checkpoint:
                        re-running the same manifest skips unchanged "ok"
                        specs and re-attempts failures
  --no-resume           ignore an existing checkpoint; rerun everything
  --deadline-ms N       per-spec cooperative deadline (0 = none); overruns
                        end the spec with error_code "deadline"
  --max-attempts N      tries per spec for TRANSIENT failures (default 3;
                        permanent failures never retry)
  --backoff-ms N        initial retry backoff (default 100; grows 4x per
                        retry, capped at 2000ms; 0 = no sleeping)

  Failure injection: set LSIQ_FAILPOINTS (e.g.
  "flow.grade=error(io,1)") to fault named sites deterministically —
  see src/util/failpoint.hpp for the grammar and site list.

Exit codes: 0 = success; 1 = runtime failure (including failed batch
specs and report/JSONL write failures); 2 = spec or usage error.
)help";

int usage() {
  std::cerr << "usage: lsiq_flow [--validate | --check] <spec-file>\n"
               "       lsiq_flow [--check] --batch [options] <manifest>\n"
               "       lsiq_flow --help\n";
  return 2;
}

/// Flush stdout and report a write failure (full disk, closed pipe) as a
/// runtime error instead of silently dropping output.
int finish(int code) {
  std::cout.flush();
  if (!std::cout) {
    std::cerr << "lsiq_flow: error: writing output failed\n";
    return EXIT_FAILURE;
  }
  return code;
}

/// Parse a non-negative integer CLI option value; exits via usage() text
/// on garbage.
std::optional<long> parse_count(const std::string& value) {
  try {
    std::size_t consumed = 0;
    const long parsed = std::stol(value, &consumed);
    if (consumed != value.size() || parsed < 0) return std::nullopt;
    return parsed;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

struct BatchCli {
  std::string manifest;
  lsiq::flow::BatchOptions options;
};

int run_batch_mode(const BatchCli& cli) {
  using namespace lsiq;
  try {
    flow::BatchOptions options = cli.options;
    options.stream = &std::cout;
    const flow::BatchResult result = flow::run_manifest(cli.manifest,
                                                        options);
    std::cerr << result.summary() << "\n";
    return finish(result.all_ok() ? EXIT_SUCCESS : EXIT_FAILURE);
  } catch (const lsiq::Error& e) {
    // Batch-level faults only — individual spec failures are records.
    std::cerr << "lsiq_flow: batch error [" << error_code_name(e.code())
              << "]: " << e.what() << "\n";
    return e.code() == ErrorCode::kInvalidSpec ? 2 : EXIT_FAILURE;
  } catch (const std::exception& e) {
    std::cerr << "lsiq_flow: internal error: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lsiq;

  // Arm failure-injection sites from the environment first thing, so CI
  // can fault any stage of either mode without a rebuild.
  try {
    util::Failpoints::instance().arm_from_env();
  } catch (const lsiq::Error& e) {
    std::cerr << "lsiq_flow: bad LSIQ_FAILPOINTS: " << e.what() << "\n";
    return 2;
  }

  bool validate_only = false;
  bool check_mode = false;
  bool batch_mode = false;
  BatchCli batch;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto option_value = [&](const char* name) -> std::optional<long> {
      if (++i >= argc) {
        std::cerr << "lsiq_flow: " << name << " needs a value\n";
        return std::nullopt;
      }
      const std::optional<long> parsed = parse_count(argv[i]);
      if (!parsed.has_value()) {
        std::cerr << "lsiq_flow: " << name
                  << " needs a non-negative integer, got '" << argv[i]
                  << "'\n";
      }
      return parsed;
    };
    if (arg == "-h" || arg == "--help") {
      std::cout << kHelp;
      return finish(EXIT_SUCCESS);
    } else if (arg == "--validate") {
      validate_only = true;
    } else if (arg == "--check") {
      check_mode = true;
    } else if (arg == "--batch") {
      batch_mode = true;
    } else if (arg == "--jobs") {
      const auto value = option_value("--jobs");
      if (!value.has_value()) return usage();
      batch.options.num_workers = static_cast<std::size_t>(*value);
    } else if (arg == "--checkpoint") {
      if (++i >= argc) {
        std::cerr << "lsiq_flow: --checkpoint needs a path\n";
        return usage();
      }
      batch.options.checkpoint = argv[i];
    } else if (arg == "--no-resume") {
      batch.options.resume = false;
    } else if (arg == "--deadline-ms") {
      const auto value = option_value("--deadline-ms");
      if (!value.has_value()) return usage();
      batch.options.deadline_ms = static_cast<int>(*value);
    } else if (arg == "--max-attempts") {
      const auto value = option_value("--max-attempts");
      if (!value.has_value() || *value < 1) return usage();
      batch.options.retry.max_attempts = static_cast<int>(*value);
    } else if (arg == "--backoff-ms") {
      const auto value = option_value("--backoff-ms");
      if (!value.has_value()) return usage();
      batch.options.retry.backoff_initial_ms = static_cast<int>(*value);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();
  if (batch_mode && validate_only) return usage();
  if (check_mode && validate_only) return usage();

  if (batch_mode) {
    batch.manifest = path;
    batch.options.check_only = check_mode;
    return run_batch_mode(batch);
  }

  try {
    const flow::SpecFile file = flow::read_spec_file(path);
    const std::vector<flow::SpecIssue> issues = flow::validate(file.spec);
    if (!issues.empty()) {
      for (const flow::SpecIssue& issue : issues) {
        std::cerr << "spec error: " << issue.field << ": " << issue.message
                  << "\n";
      }
      return 2;
    }
    if (file.circuit.empty()) {
      std::cerr << "spec error: circuit: a spec file must name a circuit\n";
      return 2;
    }
    // The circuit selector is part of the spec: resolve it in both modes
    // so --validate catches a bad name and a bad name is a spec error
    // (exit 2), not a runtime failure.
    std::optional<circuit::Circuit> circuit;
    try {
      circuit = flow::circuit_from_name(file.circuit);
    } catch (const lsiq::Error& e) {
      std::cerr << "spec error: circuit: " << e.what() << "\n";
      return 2;
    }
    if (validate_only) {
      std::cout << "spec OK: circuit " << file.circuit << ", fault model "
                << file.spec.fault_model.kind << ", source "
                << file.spec.source.kind << ", observe "
                << file.spec.observe.kind << ", engine "
                << file.spec.engine.kind << "\n";
      return finish(EXIT_SUCCESS);
    }
    // validate() accepted the spec, so the model name resolves.
    const fault_model::FaultModel model =
        *fault_model::fault_model_from_name(file.spec.fault_model.kind);
    const fault::FaultList faults = fault_model::universe(*circuit, model);
    if (check_mode) {
      // Dry-run lint: the analyze gate only, diagnostics as JSON lines.
      try {
        const flow::CheckOutcome outcome =
            flow::check_detailed(faults, file.spec);
        for (const analyze::Diagnostic& diagnostic : outcome.diagnostics) {
          std::cout << diagnostic.to_jsonl() << "\n";
        }
        std::cerr << "check OK: circuit " << file.circuit << ", "
                  << faults.class_count() << " collapsed classes, "
                  << outcome.diagnostics.size() << " warning"
                  << (outcome.diagnostics.size() == 1 ? "" : "s");
        if (outcome.statically_redundant_faults > 0) {
          std::cerr << ", " << outcome.statically_redundant_faults
                    << " statically redundant fault"
                    << (outcome.statically_redundant_faults == 1 ? "" : "s")
                    << " (" << outcome.statically_redundant_classes
                    << (outcome.statically_redundant_classes == 1
                            ? " class"
                            : " classes")
                    << ")";
        }
        std::cerr << "\n";
        return finish(EXIT_SUCCESS);
      } catch (const analyze::LintError& e) {
        std::size_t errors = 0;
        for (const analyze::Diagnostic& diagnostic : e.diagnostics()) {
          std::cout << diagnostic.to_jsonl() << "\n";
          if (diagnostic.severity == analyze::Policy::kError) ++errors;
        }
        std::cerr << "check FAILED: circuit " << file.circuit << ", "
                  << errors << " error" << (errors == 1 ? "" : "s") << ", "
                  << e.diagnostics().size() - errors << " warning"
                  << (e.diagnostics().size() - errors == 1 ? "" : "s")
                  << "\n";
        return finish(EXIT_FAILURE);
      }
    }
    std::cout << "circuit: " << circuit->name() << " — "
              << fault_model::fault_model_label(model)
              << " fault universe N = " << faults.fault_count() << " ("
              << faults.class_count() << " collapsed classes)\n";
    const flow::FlowResult result = flow::run(faults, file.spec);
    std::cout << result.report();
    return finish(EXIT_SUCCESS);
  } catch (const lsiq::ParseError& e) {
    // A spec file the parser rejects is a spec error, same as one
    // validate() rejects.
    std::cerr << "spec error: " << e.what() << "\n";
    return 2;
  } catch (const lsiq::IoError& e) {
    if (check_mode) {
      // The --check contract: an unreadable spec is a spec error (2),
      // mirroring parse failures — a dry run has no runtime half to fail.
      std::cerr << "spec error: " << e.what() << "\n";
      return 2;
    }
    std::cerr << "lsiq_flow: error [" << error_code_name(e.code())
              << "]: " << e.what() << "\n";
    return EXIT_FAILURE;
  } catch (const lsiq::Error& e) {
    std::cerr << "lsiq_flow: error [" << error_code_name(e.code())
              << "]: " << e.what() << "\n";
    return EXIT_FAILURE;
  } catch (const std::exception& e) {
    // Backstop so no library exception ever reaches std::terminate.
    std::cerr << "lsiq_flow: internal error: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
}
