// lsiq_flow — run one declarative flow spec and print the Table-1 / DPPM
// report.
//
//     lsiq_flow <spec-file>              run the experiment
//     lsiq_flow --validate <spec-file>   check the spec, run nothing
//
// A spec file selects a circuit and the four flow axes (see
// flow/spec_io.hpp for the format, tools/specs/ for examples). Validation
// problems are printed one per line with the offending field and exit
// code 2; runtime failures (unreachable strobes, unreadable files) exit 1.
#include <cstdlib>
#include <exception>
#include <iostream>
#include <optional>
#include <string>

#include "fault/fault_list.hpp"
#include "fault_model/universe.hpp"
#include "flow/flow.hpp"
#include "flow/spec_io.hpp"
#include "util/error.hpp"

namespace {

int usage() {
  std::cerr << "usage: lsiq_flow [--validate] <spec-file>\n";
  return EXIT_FAILURE;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lsiq;

  bool validate_only = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--validate") {
      validate_only = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  try {
    const flow::SpecFile file = flow::read_spec_file(path);
    const std::vector<flow::SpecIssue> issues = flow::validate(file.spec);
    if (!issues.empty()) {
      for (const flow::SpecIssue& issue : issues) {
        std::cerr << "spec error: " << issue.field << ": " << issue.message
                  << "\n";
      }
      return 2;
    }
    if (file.circuit.empty()) {
      std::cerr << "spec error: circuit: a spec file must name a circuit\n";
      return 2;
    }
    // The circuit selector is part of the spec: resolve it in both modes
    // so --validate catches a bad name and a bad name is a spec error
    // (exit 2), not a runtime failure.
    std::optional<circuit::Circuit> circuit;
    try {
      circuit = flow::circuit_from_name(file.circuit);
    } catch (const lsiq::Error& e) {
      std::cerr << "spec error: circuit: " << e.what() << "\n";
      return 2;
    }
    if (validate_only) {
      std::cout << "spec OK: circuit " << file.circuit << ", fault model "
                << file.spec.fault_model.kind << ", source "
                << file.spec.source.kind << ", observe "
                << file.spec.observe.kind << ", engine "
                << file.spec.engine.kind << "\n";
      return EXIT_SUCCESS;
    }
    // validate() accepted the spec, so the model name resolves.
    const fault_model::FaultModel model =
        *fault_model::fault_model_from_name(file.spec.fault_model.kind);
    const fault::FaultList faults = fault_model::universe(*circuit, model);
    std::cout << "circuit: " << circuit->name() << " — "
              << fault_model::fault_model_label(model)
              << " fault universe N = " << faults.fault_count() << " ("
              << faults.class_count() << " collapsed classes)\n";
    const flow::FlowResult result = flow::run(faults, file.spec);
    std::cout << result.report();
    return EXIT_SUCCESS;
  } catch (const lsiq::Error& e) {
    std::cerr << "lsiq_flow: error: " << e.what() << "\n";
    return EXIT_FAILURE;
  } catch (const std::exception& e) {
    // Backstop so no library exception ever reaches std::terminate.
    std::cerr << "lsiq_flow: internal error: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
}
