// lsiq_flow — run one declarative flow spec (or a whole batch of them)
// and print the Table-1 / DPPM report.
//
//     lsiq_flow <spec-file>              run the experiment
//     lsiq_flow --validate <spec-file>   check the spec, run nothing
//     lsiq_flow --check <spec-file>      spec + netlist lint, run nothing
//     lsiq_flow --batch <manifest>       run many specs (see --help)
//     lsiq_flow --server SOCK --submit <spec-file>
//                                        submit to a lsiq_flowd daemon
//     lsiq_flow --canon <store.jsonl>    canonicalize a result store
//
// A spec file selects a circuit and the four flow axes (see
// flow/spec_io.hpp for the format, tools/specs/ for examples). A manifest
// is a directory of .spec files or a list file naming them one per line.
//
// Exit-code contract (stable; scripts may rely on it):
//   0  success — the flow ran (every batch spec "ok" in --batch mode;
//      in client mode, the request succeeded and a waited-for job's
//      record is "ok")
//   1  runtime failure — unreadable files, unreachable strobes, failed
//      batch specs, a refused or failed daemon request, or a write
//      failure on the report/JSONL output
//   2  spec/usage error — bad command line, malformed or invalid spec,
//      empty manifest
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <thread>

#include "analyze/rule.hpp"
#include "fault/fault_list.hpp"
#include "fault_model/universe.hpp"
#include "flow/batch.hpp"
#include "flow/flow.hpp"
#include "flow/spec_io.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/json.hpp"
#include "util/version.hpp"

namespace {

constexpr const char* kHelp = R"help(usage: lsiq_flow [options] <spec-file>
       lsiq_flow --batch [options] <manifest>
       lsiq_flow --server SOCKET <client-op>
       lsiq_flow --canon <store.jsonl>

Run one declarative flow spec end to end — materialize the pattern
source, grade it, manufacture and test the virtual lot, characterize
DPPM — and print the Table-1 report. See tools/specs/ for examples.

Options:
  -h, --help            print this help and exit 0
  --version             print the version and exit 0
  --validate            check the spec (including the circuit name), run
                        nothing
  --check               dry-run lint: validate the spec, resolve the
                        circuit, and run the static-analysis gate
                        (src/analyze) under the spec's analyze_* policies
                        without grading anything. Diagnostics stream to
                        stdout as JSON lines, a summary to stderr. Exit 0
                        when the gate passes (warnings allowed), 1 when an
                        error-policy rule fired, 2 for an unreadable or
                        invalid spec. Combine with --batch to lint a whole
                        manifest (one JSONL record per spec, lint failures
                        recorded with error_code "lint").

Batch mode (--batch <manifest>):
  A manifest is a directory (every *.spec in it, sorted) or a list file
  (one spec path per line, '#' comments, relative paths resolved against
  the list file's directory). Specs run concurrently; one JSONL record
  per spec is streamed to stdout in completion order.

  --jobs N              concurrent spec runners (0 = hardware threads)
  --checkpoint FILE     JSONL result store doubling as a checkpoint:
                        re-running the same manifest skips unchanged "ok"
                        specs and re-attempts failures
  --no-resume           ignore an existing checkpoint; rerun everything
  --deadline-ms N       per-spec cooperative deadline (0 = none); overruns
                        end the spec with error_code "deadline"
  --max-attempts N      tries per spec for TRANSIENT failures (default 3;
                        permanent failures never retry)
  --backoff-ms N        initial retry backoff (default 100; grows 4x per
                        retry, capped at 2000ms; 0 = no sleeping)
  --cache-cost N        artifact cache cost bound in compiled nodes
                        (default 0 = unbounded; see lsiq_flowd --help)

  Failure injection: set LSIQ_FAILPOINTS (e.g.
  "flow.grade=error(io,1)") to fault named sites deterministically —
  see src/util/failpoint.hpp for the grammar and site list.

Client mode (--server SOCKET, talking to a lsiq_flowd daemon):
  --submit SPEC         submit one spec file; prints the submit response
                        (JSON, includes the job id). With --wait, polls
                        until the job is done and prints its full result
                        record; exit 0 iff the record is "ok"
  --priority N          submit priority (higher runs first; default 0)
  --deadline-ms N       per-job deadline override for --submit
  --wait                after --submit: block until the job finishes
  --status JOB          print one job's state
  --result JOB          print a finished job's full result record
  --cancel JOB          cancel a queued (immediate) or running
                        (cooperative) job
  --list                print every job, one JSON line each
  --stats               print queue + artifact-cache counters
  --ping                check the daemon is alive; prints its version
  --drain               finish all admitted jobs, then stop the daemon
  --shutdown            cancel queued jobs and stop the daemon
  All responses are single JSON lines (README.md "Flow service" has the
  field tables). Refusals print the server's error response and exit 1 —
  error_code "queue_full" is worth a client-side retry, "shutdown" is
  not.

Store canonicalization (--canon <store.jsonl>):
  Print the store's last record per spec, sorted by spec path, in
  canonical form (volatile fields wall_ms/resumed dropped). Two stores
  of the same work — a --batch checkpoint and a daemon journal, say —
  canonicalize to identical bytes; CI diffs exactly that.

Exit codes: 0 = success; 1 = runtime failure (including failed batch
specs and report/JSONL write failures); 2 = spec or usage error.
)help";

int usage() {
  std::cerr << "usage: lsiq_flow [--validate | --check] <spec-file>\n"
               "       lsiq_flow [--check] --batch [options] <manifest>\n"
               "       lsiq_flow --server SOCKET <client-op>\n"
               "       lsiq_flow --canon <store.jsonl>\n"
               "       lsiq_flow --help\n";
  return 2;
}

/// Flush stdout and report a write failure (full disk, closed pipe) as a
/// runtime error instead of silently dropping output.
int finish(int code) {
  std::cout.flush();
  if (!std::cout) {
    std::cerr << "lsiq_flow: error: writing output failed\n";
    return EXIT_FAILURE;
  }
  return code;
}

/// Parse a non-negative integer CLI option value; exits via usage() text
/// on garbage.
std::optional<long> parse_count(const std::string& value) {
  try {
    std::size_t consumed = 0;
    const long parsed = std::stol(value, &consumed);
    if (consumed != value.size() || parsed < 0) return std::nullopt;
    return parsed;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

struct BatchCli {
  std::string manifest;
  lsiq::flow::BatchOptions options;
};

int run_batch_mode(const BatchCli& cli) {
  using namespace lsiq;
  try {
    flow::BatchOptions options = cli.options;
    options.stream = &std::cout;
    const flow::BatchResult result = flow::run_manifest(cli.manifest,
                                                        options);
    std::cerr << result.summary() << "\n";
    return finish(result.all_ok() ? EXIT_SUCCESS : EXIT_FAILURE);
  } catch (const lsiq::Error& e) {
    // Batch-level faults only — individual spec failures are records.
    std::cerr << "lsiq_flow: batch error [" << error_code_name(e.code())
              << "]: " << e.what() << "\n";
    return e.code() == ErrorCode::kInvalidSpec ? 2 : EXIT_FAILURE;
  } catch (const std::exception& e) {
    std::cerr << "lsiq_flow: internal error: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
}

// ---- client mode (talking to a lsiq_flowd daemon) ----

struct ClientCli {
  std::string server;
  std::string op;     ///< submit|status|result|cancel|list|stats|ping|...
  std::string spec;   ///< submit: spec path (passed VERBATIM — the record
                      ///< must name the same path a --batch manifest would)
  std::uint64_t job = 0;
  int priority = 0;
  int deadline_ms = -1;
  bool wait = false;
};

/// One response line → parsed fields; empty map on malformation.
std::map<std::string, lsiq::util::json::Value> parse_response(
    const std::string& line) {
  std::map<std::string, lsiq::util::json::Value> values;
  if (!lsiq::util::json::parse_flat_object(line, &values)) values.clear();
  return values;
}

int run_client_mode(const ClientCli& cli) {
  using namespace lsiq;
  namespace json = util::json;
  using Kind = json::Value::Kind;
  try {
    service::SocketClient client(cli.server);
    service::Request request;
    request.op = cli.op;
    if (cli.op == "submit") {
      request.spec = cli.spec;
      request.priority = cli.priority;
      request.deadline_ms = cli.deadline_ms;
    } else if (cli.op == "status" || cli.op == "result" ||
               cli.op == "cancel") {
      request.job = cli.job;
      request.has_job = true;
    }
    client.send_line(service::format_request(request));
    const std::string line = client.read_line();
    std::cout << line << "\n";
    const auto values = parse_response(line);
    const json::Value* ok = json::find(values, "ok", Kind::kBool);
    if (ok == nullptr || !ok->boolean) return finish(EXIT_FAILURE);

    if (cli.op == "list") {
      const json::Value* count = json::find(values, "count", Kind::kNumber);
      const std::size_t jobs =
          count != nullptr ? static_cast<std::size_t>(count->number) : 0;
      for (std::size_t i = 0; i < jobs; ++i) {
        std::cout << client.read_line() << "\n";
      }
      return finish(EXIT_SUCCESS);
    }

    if (cli.op == "submit" && cli.wait) {
      const json::Value* job = json::find(values, "job", Kind::kNumber);
      if (job == nullptr) return finish(EXIT_FAILURE);
      const auto id = static_cast<std::uint64_t>(job->number);
      // Poll over the same connection; short-lived exchanges keep the
      // daemon responsive to cancels from elsewhere while we wait.
      while (true) {
        service::Request poll;
        poll.op = "status";
        poll.job = id;
        poll.has_job = true;
        client.send_line(service::format_request(poll));
        const auto status = parse_response(client.read_line());
        const json::Value* state = json::find(status, "state", Kind::kString);
        if (state == nullptr) return finish(EXIT_FAILURE);
        if (state->text == "done") break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      service::Request fetch;
      fetch.op = "result";
      fetch.job = id;
      fetch.has_job = true;
      client.send_line(service::format_request(fetch));
      const std::string record_line = client.read_line();
      std::cout << record_line << "\n";
      const auto record = parse_response(record_line);
      const json::Value* status = json::find(record, "status", Kind::kString);
      return finish(status != nullptr && status->text == "ok"
                        ? EXIT_SUCCESS
                        : EXIT_FAILURE);
    }
    return finish(EXIT_SUCCESS);
  } catch (const lsiq::Error& e) {
    std::cerr << "lsiq_flow: client error [" << error_code_name(e.code())
              << "]: " << e.what() << "\n";
    return EXIT_FAILURE;
  } catch (const std::exception& e) {
    std::cerr << "lsiq_flow: internal error: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
}

// ---- store canonicalization ----

int run_canon_mode(const std::string& path) {
  using namespace lsiq;
  {
    std::ifstream probe(path);
    if (!probe) {
      std::cerr << "lsiq_flow: cannot read result store: " << path << "\n";
      return EXIT_FAILURE;
    }
  }
  // load_result_store applies last-record-per-spec; the map is already
  // sorted by spec path, which IS the canonical order.
  const std::map<std::string, flow::BatchRecord> records =
      flow::load_result_store(path);
  for (const auto& [spec, record] : records) {
    std::cout << record.canonical_jsonl() << "\n";
  }
  return finish(EXIT_SUCCESS);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lsiq;

  // Arm failure-injection sites from the environment first thing, so CI
  // can fault any stage of either mode without a rebuild.
  try {
    util::Failpoints::instance().arm_from_env();
  } catch (const lsiq::Error& e) {
    std::cerr << "lsiq_flow: bad LSIQ_FAILPOINTS: " << e.what() << "\n";
    return 2;
  }

  bool validate_only = false;
  bool check_mode = false;
  bool batch_mode = false;
  BatchCli batch;
  ClientCli client;
  std::string canon_path;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto option_value = [&](const char* name) -> std::optional<long> {
      if (++i >= argc) {
        std::cerr << "lsiq_flow: " << name << " needs a value\n";
        return std::nullopt;
      }
      const std::optional<long> parsed = parse_count(argv[i]);
      if (!parsed.has_value()) {
        std::cerr << "lsiq_flow: " << name
                  << " needs a non-negative integer, got '" << argv[i]
                  << "'\n";
      }
      return parsed;
    };
    // A client-mode op that takes a job id; sets client.op + client.job.
    const auto job_op = [&](const char* name) -> bool {
      const auto value = option_value(name);
      if (!value.has_value()) return false;
      client.op = name + 2;  // strip "--"
      client.job = static_cast<std::uint64_t>(*value);
      return true;
    };
    if (arg == "-h" || arg == "--help") {
      std::cout << kHelp;
      return finish(EXIT_SUCCESS);
    } else if (arg == "--version") {
      std::cout << "lsiq_flow " << kVersion << "\n";
      return finish(EXIT_SUCCESS);
    } else if (arg == "--server") {
      if (++i >= argc) {
        std::cerr << "lsiq_flow: --server needs a socket path\n";
        return usage();
      }
      client.server = argv[i];
    } else if (arg == "--canon") {
      if (++i >= argc) {
        std::cerr << "lsiq_flow: --canon needs a store path\n";
        return usage();
      }
      canon_path = argv[i];
    } else if (arg == "--submit") {
      if (++i >= argc) {
        std::cerr << "lsiq_flow: --submit needs a spec path\n";
        return usage();
      }
      client.op = "submit";
      client.spec = argv[i];
    } else if (arg == "--status" || arg == "--result" || arg == "--cancel") {
      if (!job_op(arg.c_str())) return usage();
    } else if (arg == "--list" || arg == "--stats" || arg == "--ping" ||
               arg == "--drain" || arg == "--shutdown") {
      client.op = arg.substr(2);
    } else if (arg == "--wait") {
      client.wait = true;
    } else if (arg == "--priority") {
      const auto value = option_value("--priority");
      if (!value.has_value()) return usage();
      client.priority = static_cast<int>(*value);
    } else if (arg == "--validate") {
      validate_only = true;
    } else if (arg == "--check") {
      check_mode = true;
    } else if (arg == "--batch") {
      batch_mode = true;
    } else if (arg == "--jobs") {
      const auto value = option_value("--jobs");
      if (!value.has_value()) return usage();
      batch.options.num_workers = static_cast<std::size_t>(*value);
    } else if (arg == "--checkpoint") {
      if (++i >= argc) {
        std::cerr << "lsiq_flow: --checkpoint needs a path\n";
        return usage();
      }
      batch.options.checkpoint = argv[i];
    } else if (arg == "--no-resume") {
      batch.options.resume = false;
    } else if (arg == "--deadline-ms") {
      const auto value = option_value("--deadline-ms");
      if (!value.has_value()) return usage();
      batch.options.deadline_ms = static_cast<int>(*value);
      client.deadline_ms = static_cast<int>(*value);
    } else if (arg == "--cache-cost") {
      const auto value = option_value("--cache-cost");
      if (!value.has_value()) return usage();
      batch.options.cache_max_cost = static_cast<std::size_t>(*value);
    } else if (arg == "--max-attempts") {
      const auto value = option_value("--max-attempts");
      if (!value.has_value() || *value < 1) return usage();
      batch.options.retry.max_attempts = static_cast<int>(*value);
    } else if (arg == "--backoff-ms") {
      const auto value = option_value("--backoff-ms");
      if (!value.has_value()) return usage();
      batch.options.retry.backoff_initial_ms = static_cast<int>(*value);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage();
    }
  }
  if (!canon_path.empty()) {
    if (batch_mode || validate_only || check_mode || !path.empty() ||
        !client.server.empty()) {
      return usage();
    }
    return run_canon_mode(canon_path);
  }
  if (!client.server.empty() || !client.op.empty()) {
    // Client mode: --server plus exactly one op, nothing from the other
    // modes mixed in.
    if (client.server.empty() || client.op.empty() || batch_mode ||
        validate_only || check_mode || !path.empty()) {
      return usage();
    }
    return run_client_mode(client);
  }
  if (path.empty()) return usage();
  if (batch_mode && validate_only) return usage();
  if (check_mode && validate_only) return usage();

  if (batch_mode) {
    batch.manifest = path;
    batch.options.check_only = check_mode;
    return run_batch_mode(batch);
  }

  try {
    const flow::SpecFile file = flow::read_spec_file(path);
    const std::vector<flow::SpecIssue> issues = flow::validate(file.spec);
    if (!issues.empty()) {
      for (const flow::SpecIssue& issue : issues) {
        std::cerr << "spec error: " << issue.field << ": " << issue.message
                  << "\n";
      }
      return 2;
    }
    if (file.circuit.empty()) {
      std::cerr << "spec error: circuit: a spec file must name a circuit\n";
      return 2;
    }
    // The circuit selector is part of the spec: resolve it in both modes
    // so --validate catches a bad name and a bad name is a spec error
    // (exit 2), not a runtime failure.
    std::optional<circuit::Circuit> circuit;
    try {
      circuit = flow::circuit_from_name(file.circuit);
    } catch (const lsiq::Error& e) {
      std::cerr << "spec error: circuit: " << e.what() << "\n";
      return 2;
    }
    if (validate_only) {
      std::cout << "spec OK: circuit " << file.circuit << ", fault model "
                << file.spec.fault_model.kind << ", source "
                << file.spec.source.kind << ", observe "
                << file.spec.observe.kind << ", engine "
                << file.spec.engine.kind << "\n";
      return finish(EXIT_SUCCESS);
    }
    // validate() accepted the spec, so the model name resolves.
    const fault_model::FaultModel model =
        *fault_model::fault_model_from_name(file.spec.fault_model.kind);
    const fault::FaultList faults = fault_model::universe(*circuit, model);
    if (check_mode) {
      // Dry-run lint: the analyze gate only, diagnostics as JSON lines.
      try {
        const flow::CheckOutcome outcome =
            flow::check_detailed(faults, file.spec);
        for (const analyze::Diagnostic& diagnostic : outcome.diagnostics) {
          std::cout << diagnostic.to_jsonl() << "\n";
        }
        std::cerr << "check OK: circuit " << file.circuit << ", "
                  << faults.class_count() << " collapsed classes, "
                  << outcome.diagnostics.size() << " warning"
                  << (outcome.diagnostics.size() == 1 ? "" : "s");
        if (outcome.statically_redundant_faults > 0) {
          std::cerr << ", " << outcome.statically_redundant_faults
                    << " statically redundant fault"
                    << (outcome.statically_redundant_faults == 1 ? "" : "s")
                    << " (" << outcome.statically_redundant_classes
                    << (outcome.statically_redundant_classes == 1
                            ? " class"
                            : " classes")
                    << ")";
        }
        std::cerr << "\n";
        return finish(EXIT_SUCCESS);
      } catch (const analyze::LintError& e) {
        std::size_t errors = 0;
        for (const analyze::Diagnostic& diagnostic : e.diagnostics()) {
          std::cout << diagnostic.to_jsonl() << "\n";
          if (diagnostic.severity == analyze::Policy::kError) ++errors;
        }
        std::cerr << "check FAILED: circuit " << file.circuit << ", "
                  << errors << " error" << (errors == 1 ? "" : "s") << ", "
                  << e.diagnostics().size() - errors << " warning"
                  << (e.diagnostics().size() - errors == 1 ? "" : "s")
                  << "\n";
        return finish(EXIT_FAILURE);
      }
    }
    std::cout << "circuit: " << circuit->name() << " — "
              << fault_model::fault_model_label(model)
              << " fault universe N = " << faults.fault_count() << " ("
              << faults.class_count() << " collapsed classes)\n";
    const flow::FlowResult result = flow::run(faults, file.spec);
    std::cout << result.report();
    return finish(EXIT_SUCCESS);
  } catch (const lsiq::ParseError& e) {
    // A spec file the parser rejects is a spec error, same as one
    // validate() rejects.
    std::cerr << "spec error: " << e.what() << "\n";
    return 2;
  } catch (const lsiq::IoError& e) {
    if (check_mode) {
      // The --check contract: an unreadable spec is a spec error (2),
      // mirroring parse failures — a dry run has no runtime half to fail.
      std::cerr << "spec error: " << e.what() << "\n";
      return 2;
    }
    std::cerr << "lsiq_flow: error [" << error_code_name(e.code())
              << "]: " << e.what() << "\n";
    return EXIT_FAILURE;
  } catch (const lsiq::Error& e) {
    std::cerr << "lsiq_flow: error [" << error_code_name(e.code())
              << "]: " << e.what() << "\n";
    return EXIT_FAILURE;
  } catch (const std::exception& e) {
    // Backstop so no library exception ever reaches std::terminate.
    std::cerr << "lsiq_flow: internal error: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
}
