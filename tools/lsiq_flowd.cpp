// lsiq_flowd — the flow service daemon: a long-running lsiq_flow.
//
//     lsiq_flowd --server /tmp/lsiq.sock --store results.jsonl
//
// Clients (lsiq_flow --server ..., or anything that speaks the protocol
// of src/service/protocol.hpp) submit flow specs over the UNIX socket;
// jobs run asynchronously on worker lanes with the same isolation,
// retry, deadline and result-record semantics as `lsiq_flow --batch`,
// sharing one bounded artifact cache across every job the daemon ever
// runs. The JSONL store is an append-mode journal: restart the daemon on
// the same store and unchanged-ok specs resolve instantly (resumed
// records), exactly like --batch --resume.
//
// The daemon exits after serving a `drain` request (finish the queue
// first) or a `shutdown` request (cancel the queue); SIGINT/SIGTERM
// behave like shutdown.
//
// Exit-code contract (stable; scripts may rely on it):
//   0  clean exit — drain, shutdown, or signal
//   1  runtime failure — cannot bind the socket, cannot open the store
//   2  usage error — bad command line
#include <csignal>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <optional>
#include <string>

#include "service/server.hpp"
#include "service/service.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/version.hpp"

namespace {

constexpr const char* kHelp = R"help(usage: lsiq_flowd --server SOCKET [options]

Run the flow service daemon: accept flow-spec jobs over a UNIX-domain
socket, execute them asynchronously on worker lanes, and journal one
JSONL result record per job. Submit work with `lsiq_flow --server
SOCKET --submit spec.spec` (see lsiq_flow --help) or any client that
speaks the line-delimited JSON protocol (README.md, "Flow service").

Options:
  -h, --help            print this help and exit 0
  --version             print the version and exit 0
  --server SOCKET       UNIX socket path to listen on (required)
  --store FILE          append-mode JSONL result store; doubles as the
                        resume journal across daemon restarts
  --no-resume           do not satisfy submits from unchanged-ok store
                        records
  --jobs N              worker lanes (default 2; 0 = hardware threads)
  --queue N             admission bound: max queued jobs (default 256);
                        submits beyond it are refused with error_code
                        "queue_full"
  --cache-cost N        artifact cache cost bound in compiled nodes
                        (default 0 = unbounded); the daemon evicts
                        least-recently-used artifacts to stay under it
  --spool DIR           where inline-submitted specs are written
                        (default: current directory)
  --deadline-ms N       default per-job cooperative deadline (0 = none)
  --max-attempts N      tries per job for transient failures (default 3)
  --backoff-ms N        initial retry backoff (default 100; 0 = none)
  --max-conns N         concurrent-connection bound (default 8); the
                        connection over it is refused with error_code
                        "queue_full" instead of queueing
  --idle-timeout-ms N   per-connection idle read timeout (default 0 =
                        none); an idle connection is answered with
                        error_code "deadline" and closed

Failure injection: set LSIQ_FAILPOINTS (see src/util/failpoint.hpp);
the daemon adds the sites "service.accept" (drop the connection) and
"service.job" (fail the job with a structured record).

Exit codes: 0 = clean exit (drain/shutdown/signal); 1 = runtime
failure; 2 = usage error.
)help";

int usage() {
  std::cerr << "usage: lsiq_flowd --server SOCKET [options]\n"
               "       lsiq_flowd --help\n";
  return 2;
}

std::optional<long> parse_count(const std::string& value) {
  try {
    std::size_t consumed = 0;
    const long parsed = std::stol(value, &consumed);
    if (consumed != value.size() || parsed < 0) return std::nullopt;
    return parsed;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

lsiq::service::SocketServer* g_server = nullptr;

extern "C" void handle_signal(int) {
  // stop() is an atomic store plus a shutdown(2) call — signal-safe.
  if (g_server != nullptr) g_server->stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lsiq;

  try {
    util::Failpoints::instance().arm_from_env();
  } catch (const lsiq::Error& e) {
    std::cerr << "lsiq_flowd: bad LSIQ_FAILPOINTS: " << e.what() << "\n";
    return 2;
  }

  std::string socket_path;
  service::ServiceOptions options;
  service::SocketServerOptions server_options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto option_value = [&](const char* name) -> std::optional<long> {
      if (++i >= argc) {
        std::cerr << "lsiq_flowd: " << name << " needs a value\n";
        return std::nullopt;
      }
      const std::optional<long> parsed = parse_count(argv[i]);
      if (!parsed.has_value()) {
        std::cerr << "lsiq_flowd: " << name
                  << " needs a non-negative integer, got '" << argv[i]
                  << "'\n";
      }
      return parsed;
    };
    const auto path_value = [&](const char* name) -> const char* {
      if (++i >= argc) {
        std::cerr << "lsiq_flowd: " << name << " needs a path\n";
        return nullptr;
      }
      return argv[i];
    };
    if (arg == "-h" || arg == "--help") {
      std::cout << kHelp;
      return EXIT_SUCCESS;
    } else if (arg == "--version") {
      std::cout << "lsiq_flowd " << kVersion << "\n";
      return EXIT_SUCCESS;
    } else if (arg == "--server") {
      const char* value = path_value("--server");
      if (value == nullptr) return usage();
      socket_path = value;
    } else if (arg == "--store") {
      const char* value = path_value("--store");
      if (value == nullptr) return usage();
      options.store_path = value;
    } else if (arg == "--spool") {
      const char* value = path_value("--spool");
      if (value == nullptr) return usage();
      options.spool_dir = value;
    } else if (arg == "--no-resume") {
      options.resume = false;
    } else if (arg == "--jobs") {
      const auto value = option_value("--jobs");
      if (!value.has_value()) return usage();
      options.num_workers = static_cast<std::size_t>(*value);
    } else if (arg == "--queue") {
      const auto value = option_value("--queue");
      if (!value.has_value() || *value < 1) return usage();
      options.max_queue = static_cast<std::size_t>(*value);
    } else if (arg == "--cache-cost") {
      const auto value = option_value("--cache-cost");
      if (!value.has_value()) return usage();
      options.cache_max_cost = static_cast<std::size_t>(*value);
    } else if (arg == "--deadline-ms") {
      const auto value = option_value("--deadline-ms");
      if (!value.has_value()) return usage();
      options.default_deadline_ms = static_cast<int>(*value);
    } else if (arg == "--max-attempts") {
      const auto value = option_value("--max-attempts");
      if (!value.has_value() || *value < 1) return usage();
      options.retry.max_attempts = static_cast<int>(*value);
    } else if (arg == "--backoff-ms") {
      const auto value = option_value("--backoff-ms");
      if (!value.has_value()) return usage();
      options.retry.backoff_initial_ms = static_cast<int>(*value);
    } else if (arg == "--max-conns") {
      const auto value = option_value("--max-conns");
      if (!value.has_value() || *value < 1) return usage();
      server_options.max_connections = static_cast<std::size_t>(*value);
    } else if (arg == "--idle-timeout-ms") {
      const auto value = option_value("--idle-timeout-ms");
      if (!value.has_value()) return usage();
      server_options.idle_timeout_ms = static_cast<std::size_t>(*value);
    } else {
      return usage();
    }
  }
  if (socket_path.empty()) return usage();

  try {
    service::FlowService service(options);
    service::SocketServer server(service, socket_path, server_options);
    g_server = &server;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    std::cerr << "lsiq_flowd " << kVersion << ": listening on "
              << socket_path;
    if (!options.store_path.empty()) {
      std::cerr << ", store " << options.store_path;
    }
    std::cerr << "\n";
    server.serve();
    g_server = nullptr;
    // Destructors drain the lanes (FlowService::shutdown) and unlink the
    // socket; a signal or a drain/shutdown request are all clean exits.
    return EXIT_SUCCESS;
  } catch (const lsiq::Error& e) {
    std::cerr << "lsiq_flowd: error [" << error_code_name(e.code())
              << "]: " << e.what() << "\n";
    return EXIT_FAILURE;
  } catch (const std::exception& e) {
    std::cerr << "lsiq_flowd: internal error: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
}
